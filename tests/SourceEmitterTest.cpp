//===- tests/SourceEmitterTest.cpp - code emission golden tests ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/SourceEmitter.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace ys;

namespace {

bool contains(const std::string &Haystack, const std::string &Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

} // namespace

TEST(SourceEmitter, ExpressionForHeat) {
  std::string E = SourceEmitter::emitExpression(StencilSpec::heat3d());
  EXPECT_TRUE(contains(E, "0.5 * u0[IDX3(x, y, z)]"));
  EXPECT_TRUE(contains(E, "u0[IDX3(x + 1, y, z)]"));
  EXPECT_TRUE(contains(E, "u0[IDX3(x, y - 1, z)]"));
  EXPECT_TRUE(contains(E, "u0[IDX3(x, y, z + 1)]"));
}

TEST(SourceEmitter, UnitCoefficientOmitsMultiply) {
  StencilSpec S("s", {{1, 0, 0, 1.0, 0}});
  std::string E = SourceEmitter::emitExpression(S);
  EXPECT_EQ(E, "u0[IDX3(x + 1, y, z)]");
}

TEST(SourceEmitter, CoefficientsSurviveTextRoundTrip) {
  // Regression: coefficients used to be truncated to 9 significant
  // digits, so a compiled kernel could not be bit-identical to the
  // interpreter.  Every printed coefficient must parse back to the exact
  // double, including non-terminating binary fractions, tiny magnitudes,
  // and values needing all 17 digits.
  const double Cases[] = {1.0 / 3.0, 1e-12, 0.1, -2.0 / 7.0,
                          6.283185307179586, 1.0 + 1e-15};
  for (double Coeff : Cases) {
    SCOPED_TRACE(Coeff);
    StencilSpec S("c", {{0, 0, 0, Coeff, 0}});
    std::string E = SourceEmitter::emitExpression(S);
    // Strip the load factor; what precedes "u0[" (if anything) is the
    // printed coefficient text.
    size_t Star = E.find(" * u0[");
    ASSERT_NE(Star, std::string::npos) << E;
    std::string Text = E.substr(0, Star);
    if (Text.front() == '(') // Negatives are parenthesized.
      Text = Text.substr(1, Text.size() - 2);
    EXPECT_EQ(std::strtod(Text.c_str(), nullptr), Coeff) << Text;
  }
}

TEST(SourceEmitter, NegativeCoefficientsParenthesized) {
  // "a + -0.5 * b" is legal but "-" gluing onto the previous term is
  // fragile under textual post-processing; the emitter wraps negatives.
  StencilSpec S("n", {{0, 0, 0, -0.5, 0}, {1, 0, 0, 0.25, 0}});
  std::string E = SourceEmitter::emitExpression(S);
  EXPECT_TRUE(contains(E, "(-0.5) * u0[IDX3(x, y, z)]"));
  EXPECT_FALSE(contains(E, "+ -"));
}

TEST(SourceEmitter, UnblockedKernelStructure) {
  std::string Src =
      SourceEmitter::emitKernel(StencilSpec::heat3d(), KernelConfig());
  EXPECT_TRUE(contains(Src, "void kernel_heat3d("));
  EXPECT_TRUE(contains(Src, "const double * __restrict u0"));
  EXPECT_TRUE(contains(Src, "#pragma omp parallel for schedule(static)"));
  EXPECT_TRUE(contains(Src, "#pragma omp simd"));
  EXPECT_TRUE(contains(Src, "for (long z = 0; z < Nz; ++z)"));
  EXPECT_FALSE(contains(Src, "zb")); // No blocking loops.
}

TEST(SourceEmitter, BlockedKernelStructure) {
  KernelConfig C;
  C.Block.X = 32;
  C.Block.Y = 16;
  C.Block.Z = 8;
  std::string Src = SourceEmitter::emitKernel(StencilSpec::heat3d(), C);
  EXPECT_TRUE(contains(Src, "for (long zb = 0; zb < Nz; zb += 8)"));
  EXPECT_TRUE(contains(Src, "for (long yb = 0; yb < Ny; yb += 16)"));
  EXPECT_TRUE(contains(Src, "for (long xb = 0; xb < Nx; xb += 32)"));
  EXPECT_TRUE(contains(Src, "collapse(2)"));
  EXPECT_TRUE(contains(Src, "std::min(zb + 8, Nz)"));
}

TEST(SourceEmitter, FoldedKernelStructure) {
  KernelConfig C;
  C.VectorFold = {2, 2, 1};
  std::string Src = SourceEmitter::emitKernel(StencilSpec::heat3d(), C);
  // Fold-block signature instead of raw extents.
  EXPECT_TRUE(contains(Src, "long NVx, long NVy, long NVz"));
  // Per-point fold-linear offset tables, built once before the sweep.
  EXPECT_TRUE(contains(Src, "off0[FOLD_ELEMS]"));
  EXPECT_TRUE(contains(Src, "off0[l] = FOLD_OFF(ix, iy, iz)"));
  EXPECT_TRUE(contains(Src, "FOLD_OFF(ix + 1, iy, iz)"));
  // Vectorized lane loop accumulating per fold block.
  EXPECT_TRUE(contains(Src, "#pragma omp simd"));
  EXPECT_TRUE(contains(Src, "double acc[FOLD_ELEMS];"));
  EXPECT_TRUE(contains(Src, "acc[l] += 0.5 * u0[base + off0[l]];"));
  EXPECT_TRUE(contains(Src, "out[base + l] = acc[l];"));
  EXPECT_TRUE(contains(
      Src, "const long base = ((vz * NVy + vy) * NVx + vx) * FOLD_ELEMS;"));
  // Folded kernels never use the scalar index macro.
  EXPECT_FALSE(contains(Src, "IDX3"));
}

TEST(SourceEmitter, FoldedBlockedKernelIteratesVectorBlocks) {
  KernelConfig C;
  C.VectorFold = {4, 2, 1};
  C.Block.X = 32;
  C.Block.Y = 16;
  C.Block.Z = 8;
  std::string Src = SourceEmitter::emitKernel(StencilSpec::heat3d(), C);
  // Block sizes are converted to fold-block units (ceil-div by the fold).
  EXPECT_TRUE(contains(Src, "vxb += 8"));
  EXPECT_TRUE(contains(Src, "vyb += 8"));
  EXPECT_TRUE(contains(Src, "vzb += 8"));
  EXPECT_TRUE(contains(Src, "collapse(2)"));
}

TEST(SourceEmitter, FoldedTranslationUnitDefinesFoldMacros) {
  KernelConfig C;
  C.VectorFold = {2, 2, 1};
  std::string Src =
      SourceEmitter::emitTranslationUnit(StencilSpec::heat3d(), C);
  EXPECT_TRUE(contains(Src, "#define FOLD_X 2"));
  EXPECT_TRUE(contains(Src, "#define FOLD_Y 2"));
  EXPECT_TRUE(contains(Src, "#define FOLD_Z 1"));
  EXPECT_TRUE(contains(Src, "#define FOLD_ELEMS 4"));
  EXPECT_TRUE(contains(Src, "#define FOLD_DIV"));
  EXPECT_TRUE(contains(Src, "#define FOLD_OFF"));
  EXPECT_FALSE(contains(Src, "#define IDX3"));
}

TEST(SourceEmitter, ScalarEmissionUnchangedByFoldSupport) {
  // Default (scalar-fold) configs keep the classic IDX3 loop nest.
  std::string Src = SourceEmitter::emitTranslationUnit(StencilSpec::heat3d(),
                                                       KernelConfig());
  EXPECT_TRUE(contains(Src, "#define IDX3"));
  EXPECT_FALSE(contains(Src, "FOLD_OFF"));
  EXPECT_FALSE(contains(Src, "NVx"));
}

TEST(SourceEmitter, OptionsControlPragmas) {
  SourceEmitter::Options Opts;
  Opts.EmitOpenMP = false;
  Opts.EmitSimdPragma = false;
  Opts.EmitRestrict = false;
  std::string Src =
      SourceEmitter::emitKernel(StencilSpec::heat3d(), KernelConfig(), Opts);
  EXPECT_FALSE(contains(Src, "#pragma"));
  EXPECT_FALSE(contains(Src, "__restrict"));
}

TEST(SourceEmitter, CustomFunctionName) {
  SourceEmitter::Options Opts;
  Opts.FunctionName = "my_kernel";
  std::string Src =
      SourceEmitter::emitKernel(StencilSpec::heat3d(), KernelConfig(), Opts);
  EXPECT_TRUE(contains(Src, "void my_kernel("));
}

TEST(SourceEmitter, DashesMangledInNames) {
  std::string Src =
      SourceEmitter::emitKernel(StencilSpec::star3d(2), KernelConfig());
  EXPECT_TRUE(contains(Src, "void kernel_star3d_r2("));
}

TEST(SourceEmitter, MultiGridSignature) {
  StencilSpec S("two", {{0, 0, 0, 1.0, 0}, {0, 0, 0, 0.5, 1}});
  std::string Src = SourceEmitter::emitKernel(S, KernelConfig());
  EXPECT_TRUE(contains(Src, "u0"));
  EXPECT_TRUE(contains(Src, "u1"));
}

TEST(SourceEmitter, TranslationUnitHeader) {
  KernelConfig C;
  C.WavefrontDepth = 4;
  std::string Src =
      SourceEmitter::emitTranslationUnit(StencilSpec::heat3d(), C);
  EXPECT_TRUE(contains(Src, "// stencil   : heat3d (star, radius 1"));
  EXPECT_TRUE(contains(Src, "#define IDX3"));
  EXPECT_TRUE(contains(Src, "#include <algorithm>"));
  EXPECT_TRUE(contains(Src, "temporal wavefront depth 4"));
  EXPECT_TRUE(contains(Src, "flops/LUP"));
}

TEST(SourceEmitter, EmittedSourceParsesAsCpp) {
  // Smoke-check the emitted TU contains balanced braces.
  std::string Src = SourceEmitter::emitTranslationUnit(
      StencilSpec::star3d(2), KernelConfig());
  long Balance = 0;
  for (char Ch : Src) {
    if (Ch == '{')
      ++Balance;
    if (Ch == '}')
      --Balance;
    EXPECT_GE(Balance, 0);
  }
  EXPECT_EQ(Balance, 0);
}

TEST(SourceEmitter, PingPongDriver) {
  std::string Src = SourceEmitter::emitTimeStepDriver(
      StencilSpec::heat3d(), KernelConfig());
  EXPECT_TRUE(contains(Src, "void drive_kernel_heat3d("));
  EXPECT_TRUE(contains(Src, "std::swap(even, odd);"));
  EXPECT_FALSE(contains(Src, "frontier"));
}

TEST(SourceEmitter, WavefrontDriverFrontierSchedule) {
  KernelConfig C;
  C.WavefrontDepth = 4;
  C.Block.Z = 8;
  std::string Src =
      SourceEmitter::emitTimeStepDriver(StencilSpec::star3d(2), C);
  EXPECT_TRUE(contains(Src, "depth 4, radius 2, z-block 8"));
  EXPECT_TRUE(contains(Src, "long frontier[4 + 1]"));
  EXPECT_TRUE(contains(Src, "frontier[s - 1] - 2"));
  EXPECT_TRUE(contains(Src, "while (frontier[4] < Nz)"));
  // The slab kernel the frontier schedule calls must be *defined* in the
  // emitted text, not merely referenced — a bare call used to leave the
  // driver un-linkable.
  EXPECT_TRUE(contains(Src, "void kernel_star3d_r2_slab("));
  size_t SlabDef = Src.find("void kernel_star3d_r2_slab(");
  size_t Driver = Src.find("void drive_kernel_star3d_r2_wavefront(");
  ASSERT_NE(Driver, std::string::npos);
  EXPECT_LT(SlabDef, Driver); // Defined before its call site.
  EXPECT_TRUE(contains(Src, "kernel_star3d_r2_slab(src, dst,"));
}

TEST(SourceEmitter, WavefrontTranslationUnitIsSelfContained) {
  // A wavefront TU must carry kernel, slab kernel, and driver so it
  // compiles standalone (the jit suite actually builds it; this is the
  // cheap structural check).
  KernelConfig C;
  C.WavefrontDepth = 2;
  C.Block.Z = 4;
  std::string Src =
      SourceEmitter::emitTranslationUnit(StencilSpec::heat3d(), C);
  EXPECT_TRUE(contains(Src, "void kernel_heat3d("));
  EXPECT_TRUE(contains(Src, "void kernel_heat3d_slab("));
  EXPECT_TRUE(contains(Src, "void drive_kernel_heat3d_wavefront("));
}

TEST(SourceEmitter, ExternCLinkageOnEveryFunction) {
  SourceEmitter::Options Opts;
  Opts.EmitExternC = true;
  KernelConfig C;
  C.WavefrontDepth = 2;
  std::string Src =
      SourceEmitter::emitTranslationUnit(StencilSpec::heat3d(), C, Opts);
  EXPECT_TRUE(contains(Src, "extern \"C\" void kernel_heat3d("));
  EXPECT_TRUE(contains(Src, "extern \"C\" void kernel_heat3d_slab("));
  EXPECT_TRUE(
      contains(Src, "extern \"C\" void drive_kernel_heat3d_wavefront("));
}

TEST(SourceEmitter, WavefrontDriverClampsBlockToRadius) {
  KernelConfig C;
  C.WavefrontDepth = 2;
  C.Block.Z = 1; // Below radius+1: must be clamped for progress.
  std::string Src =
      SourceEmitter::emitTimeStepDriver(StencilSpec::star3d(2), C);
  EXPECT_TRUE(contains(Src, "z-block 3"));
}

#include "frontend/Parser.h"

TEST(SourceEmitter, DslRoundTripPreservesPoints) {
  for (const StencilSpec &Orig :
       {StencilSpec::heat3d(), StencilSpec::star3d(3),
        StencilSpec::box3d(1), StencilSpec::longRange(4)}) {
    std::string Dsl = SourceEmitter::emitDsl(Orig);
    auto DefOr = Parser::parseSingle(Dsl);
    ASSERT_TRUE(static_cast<bool>(DefOr))
        << Orig.name() << ": " << DefOr.takeError().message() << "\n"
        << Dsl;
    auto SpecOr = DefOr->singleSpec();
    ASSERT_TRUE(static_cast<bool>(SpecOr)) << Orig.name();
    EXPECT_EQ(SpecOr->numPoints(), Orig.numPoints()) << Orig.name();
    // Every original point must reappear with the same coefficient.
    for (const StencilPoint &P : Orig.points()) {
      bool Found = false;
      for (const StencilPoint &Q : SpecOr->points())
        if (P.sameOffset(Q)) {
          EXPECT_DOUBLE_EQ(P.Coeff, Q.Coeff) << Orig.name();
          Found = true;
        }
      EXPECT_TRUE(Found) << Orig.name();
    }
  }
}

TEST(SourceEmitter, DslRoundTripMultiGrid) {
  StencilSpec S("axpy", {{0, 0, 0, 1.0, 0}, {0, 0, 0, -0.5, 1}});
  std::string Dsl = SourceEmitter::emitDsl(S);
  auto DefOr = Parser::parseSingle(Dsl);
  ASSERT_TRUE(static_cast<bool>(DefOr)) << Dsl;
  auto SpecOr = DefOr->singleSpec();
  ASSERT_TRUE(static_cast<bool>(SpecOr));
  EXPECT_EQ(SpecOr->numInputGrids(), 2u);
}

TEST(SourceEmitter, DslEmissionManglesName) {
  std::string Dsl = SourceEmitter::emitDsl(StencilSpec::star3d(2));
  EXPECT_NE(Dsl.find("stencil star3d_r2 {"), std::string::npos);
}
