//===- tests/ExecutorConcurrencyTest.cpp - threaded executor tests ---------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Concurrency tests for the parallel kernel executor: sweep and wavefront
/// results must be bit-identical across thread counts (every point is
/// computed by the same FP-operation sequence, only on a different
/// thread), the tile decomposition must honor the configured thread count,
/// and the (z,y) tiling must feed threads even when the z-block count is
/// smaller than the pool.  Runs under ThreadSanitizer via the
/// `concurrency` ctest label.
///
//===----------------------------------------------------------------------===//

#include "codegen/DomainDecomposition.h"
#include "codegen/KernelExecutor.h"
#include "tuner/MeasureHarness.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

Grid randomGrid(GridDims Dims, int Halo, Fold F = Fold(), uint64_t Seed = 7) {
  Grid G(Dims, Halo, F);
  Rng R(Seed);
  G.fillRandom(R);
  return G;
}

/// Runs one sweep with \p Threads workers and returns the output grid.
Grid sweepWith(const StencilSpec &Spec, GridDims Dims, KernelConfig Config,
               unsigned Threads) {
  Config.Threads = Threads;
  Grid In = randomGrid(Dims, Spec.radius(), Config.VectorFold);
  Grid Out(Dims, Spec.radius(), Config.VectorFold);
  KernelExecutor Exec(Spec, Config);
  if (Threads <= 1) {
    Exec.runSweep({&In}, Out);
  } else {
    ThreadPool Pool(Threads);
    Exec.runSweep({&In}, Out, &Pool);
  }
  return Out;
}

TEST(ExecutorConcurrency, SweepBitIdenticalAcrossThreadCounts) {
  // Non-divisible dims and block sizes so tiles are ragged.
  StencilSpec S = StencilSpec::star3d(2);
  GridDims Dims{37, 29, 23};
  KernelConfig C;
  C.Block = {16, 8, 8};
  unsigned MaxThreads = std::max(4u, ThreadPool::defaultThreadCount());
  Grid Serial = sweepWith(S, Dims, C, 1);
  for (unsigned Threads : {3u, MaxThreads}) {
    Grid Par = sweepWith(S, Dims, C, Threads);
    EXPECT_EQ(Grid::maxAbsDiffInterior(Serial, Par), 0.0)
        << "threads=" << Threads;
  }
}

TEST(ExecutorConcurrency, WavefrontBitIdenticalAcrossThreadCounts) {
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{19, 17, 23};
  const int Steps = 6;

  auto RunSteps = [&](unsigned Threads) {
    KernelConfig C;
    C.WavefrontDepth = 3;
    C.Block = {0, 4, 4};
    C.Threads = Threads;
    Grid U = randomGrid(Dims, 1);
    Grid Scratch(Dims, 1);
    KernelExecutor Exec(S, C);
    if (Threads <= 1) {
      Exec.runTimeSteps(U, Scratch, Steps);
    } else {
      ThreadPool Pool(Threads);
      Exec.runTimeSteps(U, Scratch, Steps, &Pool);
    }
    return U;
  };

  unsigned MaxThreads = std::max(4u, ThreadPool::defaultThreadCount());
  Grid Serial = RunSteps(1);
  for (unsigned Threads : {3u, MaxThreads}) {
    Grid Par = RunSteps(Threads);
    EXPECT_EQ(Grid::maxAbsDiffInterior(Serial, Par), 0.0)
        << "threads=" << Threads;
  }
}

// Regression test: a config with Threads=2 measured on a wider pool must
// not run pool-wide (that corrupted tuner comparisons between thread
// counts).  The pool's stats show which threads actually ran tiles.
TEST(ExecutorConcurrency, HonorsConfigThreadsBelowPoolWidth) {
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{32, 32, 32};
  KernelConfig C;
  C.Block = {0, 8, 8};
  C.Threads = 2;
  Grid In = randomGrid(Dims, 1);
  Grid Out(Dims, 1);
  ThreadPool Pool(6);
  KernelExecutor Exec(S, C);
  Exec.runSweep({&In}, Out, &Pool);
  PoolStats Stats = Pool.stats();
  EXPECT_GT(Stats.totalRun(), 0ull);
  EXPECT_LE(Stats.activeThreads(), 2u);
  for (size_t T = 2; T < Stats.Threads.size(); ++T)
    EXPECT_EQ(Stats.Threads[T].TasksRun, 0ull) << "thread " << T;
}

// The previously idle-core regime: more threads than z blocks.  The 2-D
// (z,y) tiling must still hand work to every pool thread.
TEST(ExecutorConcurrency, TilesFeedMoreThreadsThanZBlocks) {
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{48, 48, 16};
  KernelConfig C;
  C.Block = {0, 8, 8}; // Nz/B.Z = 2 z blocks, but 2*6 = 12 (z,y) tiles.
  C.Threads = 4;
  Grid In = randomGrid(Dims, 1);
  Grid Out(Dims, 1);
  ThreadPool Pool(4);
  KernelExecutor Exec(S, C);
  Exec.runSweep({&In}, Out, &Pool);
  // 2 z blocks x 6 y blocks = 12 tiles: six times the work units the old
  // 1-D z decomposition exposed, so a 4-thread pool can be fed.  (Which
  // threads win the tiles is OS-scheduling dependent — on a loaded or
  // single-core host the master may drain most of them — so only the tile
  // count is asserted.)
  PoolStats Stats = Pool.stats();
  EXPECT_EQ(Stats.totalRun(), 12ull);
  EXPECT_GE(Stats.activeThreads(), 1u);

  // And the result still matches the serial reference exactly.
  Grid Ref(Dims, 1);
  KernelExecutor::runReference(S, {&In}, Ref);
  EXPECT_EQ(Grid::maxAbsDiffInterior(Ref, Out), 0.0);
}

// The overlapped exchange interleaves halo-unpack copies with interior
// compute on the pool; by construction the unpack writes only Src
// extension planes no interior-phase task touches.  Running it under
// ThreadSanitizer (this binary's `concurrency` label) proves that claim,
// and the result must stay bit-identical to the serial exchange at every
// pool width.
TEST(ExecutorConcurrency, OverlappedExchangeRaceFreeAndBitIdentical) {
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{24, 20, 30};
  const unsigned Ranks = 3;
  const int Steps = 5;

  KernelConfig C;
  C.Sched = Schedule::Wavefront;
  C.WavefrontDepth = 2;
  C.Block.Z = 2;
  const int Halo = S.radius() * C.WavefrontDepth;
  ASSERT_EQ(DecomposedGrid::validateParams(Dims, Ranks, Halo), "");

  Grid Init = randomGrid(Dims, S.radius(), Fold(), /*Seed=*/42);

  auto RunDistributed = [&](ExchangeMode Mode, unsigned PoolThreads) {
    DecomposedGrid U(Dims, Ranks, Halo);
    DecomposedGrid V(Dims, Ranks, Halo);
    U.scatter(Init);
    V.scatter(Init);
    DistributedStepper Stepper(S, C);
    Stepper.setExchangeMode(Mode);
    if (PoolThreads <= 1) {
      Stepper.runTimeSteps(U, V, Steps);
    } else {
      ThreadPool Pool(PoolThreads);
      Stepper.runTimeSteps(U, V, Steps, &Pool);
    }
    Grid Out(Dims, S.radius());
    U.gather(Out);
    return Out;
  };

  Grid Serial = RunDistributed(ExchangeMode::Serial, 1);
  unsigned MaxThreads = std::max(4u, ThreadPool::defaultThreadCount());
  for (unsigned Threads : {1u, 3u, MaxThreads}) {
    Grid Par = RunDistributed(ExchangeMode::Overlapped, Threads);
    EXPECT_EQ(Grid::maxAbsDiffInterior(Serial, Par), 0.0)
        << "threads=" << Threads;
  }
}

TEST(ExecutorConcurrency, FirstTouchGridMatchesSerialZero) {
  ThreadPool Pool(4);
  GridDims Dims{21, 19, 17};
  for (Fold F : {Fold{1, 1, 1}, Fold{4, 2, 1}}) {
    Grid Parallel(Dims, 2, F, &Pool, /*ZTile=*/4, /*YTile=*/8);
    Grid Serial(Dims, 2, F);
    ASSERT_EQ(Parallel.allocElems(), Serial.allocElems());
    const double *P = Parallel.data();
    for (size_t I = 0; I < Parallel.allocElems(); ++I)
      ASSERT_EQ(P[I], 0.0) << "elem " << I;
  }
}

// Regression test: measuring a multi-input stencil used to pass a single
// input grid into runSweep (asserting in debug builds, reading stale
// memory in release builds).
TEST(ExecutorConcurrency, MeasureHarnessHandlesMultiInputSpecs) {
  StencilSpec S("axpy3", {{0, 0, 0, 1.0, 0},
                          {0, 0, 0, 0.5, 1},
                          {1, 0, 0, 0.25, 2}});
  ASSERT_GT(S.numInputGrids(), 1u);
  MeasureHarness H(S, {24, 24, 24}, /*Repeats=*/2, /*SweepsPerRepeat=*/1);
  KernelConfig C;
  double Mlups = H.measure(C);
  EXPECT_GT(Mlups, 0.0);
  KernelConfig Threaded;
  Threaded.Threads = 2;
  EXPECT_GT(H.measure(Threaded), 0.0);
  EXPECT_EQ(H.lastPoolStats().Threads.size(), 2u);
}

} // namespace
