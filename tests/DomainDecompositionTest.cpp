//===- tests/DomainDecompositionTest.cpp - rank decomposition tests ----------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/DomainDecomposition.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

Grid randomGlobal(GridDims Dims, int Halo, uint64_t Seed = 7) {
  Grid G(Dims, Halo);
  Rng R(Seed);
  G.fillRandom(R);
  return G;
}

} // namespace

TEST(DecomposedGrid, SlabPartitionCoversDomain) {
  DecomposedGrid D({8, 8, 13}, 4, 1);
  ASSERT_EQ(D.numRanks(), 4u);
  EXPECT_EQ(D.rankZBegin(0), 0);
  long Total = 0;
  for (unsigned R = 0; R < 4; ++R) {
    EXPECT_EQ(D.rankZBegin(R + 1) - D.rankZBegin(R), D.rank(R).dims().Nz);
    Total += D.rank(R).dims().Nz;
    if (R > 0) {
      EXPECT_EQ(D.rankZBegin(R), D.rankZEnd(R - 1));
    }
  }
  EXPECT_EQ(Total, 13);
  EXPECT_EQ(D.rankZEnd(3), 13);
}

TEST(DecomposedGrid, ScatterGatherRoundTrip) {
  GridDims Dims{10, 9, 11};
  Grid Global = randomGlobal(Dims, 1);
  DecomposedGrid D(Dims, 3, 1);
  D.scatter(Global);
  Grid Back(Dims, 1);
  D.gather(Back);
  EXPECT_EQ(Grid::maxAbsDiffInterior(Global, Back), 0.0);
}

TEST(DecomposedGrid, ScatterFillsInnerHalosFromNeighbors) {
  GridDims Dims{6, 6, 9};
  Grid Global = randomGlobal(Dims, 1);
  DecomposedGrid D(Dims, 3, 1);
  D.scatter(Global);
  // Rank 1's bottom halo equals rank 0's top interior plane in the
  // global frame.
  long Z0 = D.rankZBegin(1);
  EXPECT_EQ(D.rank(1).at(2, 3, -1), Global.at(2, 3, Z0 - 1));
  // Rank 0's bottom halo is the global boundary.
  EXPECT_EQ(D.rank(0).at(2, 3, -1), Global.at(2, 3, -1));
}

TEST(DecomposedGrid, ExchangeRefreshesStaleHalos) {
  GridDims Dims{6, 6, 8};
  Grid Global = randomGlobal(Dims, 1);
  DecomposedGrid D(Dims, 2, 1);
  D.scatter(Global);
  // Perturb rank 0's top interior plane, then exchange.
  long Nz0 = D.rank(0).dims().Nz;
  D.rank(0).at(3, 3, Nz0 - 1) = 123.0;
  D.exchangeHalos();
  EXPECT_EQ(D.rank(1).at(3, 3, -1), 123.0);
  EXPECT_GT(D.haloBytesExchanged(), 0ull);
}

TEST(DistributedStepper, MatchesMonolithicTimeStepping) {
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{12, 10, 17};
  Grid Global = randomGlobal(Dims, 1);

  // Monolithic reference.
  Grid URef(Dims, 1);
  URef.copyInteriorFrom(Global);
  Grid Scratch(Dims, 1);
  KernelExecutor Exec(S, KernelConfig());
  Exec.runTimeSteps(URef, Scratch, 5);

  // Distributed run over 3 ranks.
  for (unsigned Ranks : {1u, 3u, 5u}) {
    DecomposedGrid U(Dims, Ranks, 1), V(Dims, Ranks, 1);
    U.scatter(Global);
    Grid Zero(Dims, 1);
    V.scatter(Zero);
    DistributedStepper Stepper(S, KernelConfig());
    Stepper.runTimeSteps(U, V, 5);
    Grid Result(Dims, 1);
    U.gather(Result);
    EXPECT_EQ(Grid::maxAbsDiffInterior(URef, Result), 0.0)
        << Ranks << " ranks";
  }
}

TEST(DistributedStepper, MatchesWithWideStencilAndRankParallel) {
  StencilSpec S = StencilSpec::star3d(2);
  GridDims Dims{10, 10, 16};
  Grid Global = randomGlobal(Dims, 2, 21);

  Grid URef(Dims, 2);
  URef.copyInteriorFrom(Global);
  Grid Scratch(Dims, 2);
  KernelExecutor Exec(S, KernelConfig());
  Exec.runTimeSteps(URef, Scratch, 4);

  ThreadPool Pool(3);
  DecomposedGrid U(Dims, 4, 2), V(Dims, 4, 2);
  U.scatter(Global);
  Grid Zero(Dims, 2);
  V.scatter(Zero);
  DistributedStepper Stepper(S, KernelConfig());
  Stepper.runTimeSteps(U, V, 4, &Pool);
  Grid Result(Dims, 2);
  U.gather(Result);
  EXPECT_EQ(Grid::maxAbsDiffInterior(URef, Result), 0.0);
}

TEST(DistributedStepper, HaloTrafficScalesWithRanksAndSteps) {
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{8, 8, 12};
  Grid Global = randomGlobal(Dims, 1);
  DecomposedGrid U2(Dims, 2, 1), V2(Dims, 2, 1);
  DecomposedGrid U4(Dims, 4, 1), V4(Dims, 4, 1);
  U2.scatter(Global);
  U4.scatter(Global);
  DistributedStepper Stepper(S, KernelConfig());
  Stepper.runTimeSteps(U2, V2, 3);
  Stepper.runTimeSteps(U4, V4, 3);
  // 4 ranks have 3 neighbor pairs vs 1: 3x the halo traffic.  Both
  // source and scratch exchange, so compare the sums.
  unsigned long long T2 =
      U2.haloBytesExchanged() + V2.haloBytesExchanged();
  unsigned long long T4 =
      U4.haloBytesExchanged() + V4.haloBytesExchanged();
  EXPECT_EQ(T4, 3 * T2);
}
