//===- tests/DomainDecompositionTest.cpp - rank decomposition tests ----------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/DomainDecomposition.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

Grid randomGlobal(GridDims Dims, int Halo, uint64_t Seed = 7) {
  Grid G(Dims, Halo);
  Rng R(Seed);
  G.fillRandom(R);
  return G;
}

/// Planes one exchange refreshes, from the public geometry: every
/// exchanged (non-clipped) side pulls exactly Halo planes.
unsigned long long exchangedPlanes(const DecomposedGrid &D) {
  unsigned long long Planes = 0;
  for (unsigned R = 0; R < D.numRanks(); ++R) {
    if (D.sideExchanged(R, /*Low=*/true))
      Planes += static_cast<unsigned long long>(D.halo());
    if (D.sideExchanged(R, /*Low=*/false))
      Planes += static_cast<unsigned long long>(D.halo());
  }
  return Planes;
}

} // namespace

TEST(DecomposedGrid, SlabPartitionCoversDomain) {
  DecomposedGrid D({8, 8, 13}, 4, 1);
  ASSERT_EQ(D.numRanks(), 4u);
  EXPECT_EQ(D.rankZBegin(0), 0);
  long Total = 0;
  for (unsigned R = 0; R < 4; ++R) {
    long Own = D.rankZBegin(R + 1) - D.rankZBegin(R);
    // Local interior = owned planes + deep-halo extensions.
    EXPECT_EQ(D.rank(R).dims().Nz, Own + D.rankExtLo(R) + D.rankExtHi(R));
    Total += Own;
    if (R > 0) {
      EXPECT_EQ(D.rankZBegin(R), D.rankZEnd(R - 1));
    }
  }
  EXPECT_EQ(Total, 13);
  EXPECT_EQ(D.rankZEnd(3), 13);
  // Outermost sides touch the physical boundary: no extension there.
  EXPECT_EQ(D.rankExtLo(0), 0);
  EXPECT_EQ(D.rankExtHi(3), 0);
  EXPECT_FALSE(D.sideExchanged(0, true));
  EXPECT_TRUE(D.sideExchanged(1, true));
}

TEST(DecomposedGrid, BalancedSplitHasNoEmptyRanks) {
  // The seeded bug: ceil-divide gave Nz=10, Ranks=8 slabs of 2 planes
  // until the domain ran out, leaving three empty ranks.  The balanced
  // split must give every rank at least one plane, extents differing by
  // at most one.
  DecomposedGrid D({4, 4, 10}, 8, 1);
  long MinOwn = 10, MaxOwn = 0;
  for (unsigned R = 0; R < 8; ++R) {
    long Own = D.rankZEnd(R) - D.rankZBegin(R);
    MinOwn = std::min(MinOwn, Own);
    MaxOwn = std::max(MaxOwn, Own);
  }
  EXPECT_EQ(MinOwn, 1);
  EXPECT_EQ(MaxOwn, 2);
  EXPECT_EQ(D.rankZEnd(7), 10);
}

TEST(DecomposedGrid, ValidateParamsRejectsBadShapes) {
  EXPECT_EQ(DecomposedGrid::validateParams({8, 8, 8}, 4, 1), "");
  EXPECT_NE(DecomposedGrid::validateParams({8, 8, 8}, 0, 1), "");
  EXPECT_NE(DecomposedGrid::validateParams({8, 8, 8}, 4, 0), "");
  // More ranks than planes: the case the old assert let through in
  // release builds.
  EXPECT_NE(DecomposedGrid::validateParams({8, 8, 3}, 4, 1), "");
}

TEST(DecomposedGrid, ScatterGatherRoundTrip) {
  GridDims Dims{10, 9, 11};
  Grid Global = randomGlobal(Dims, 1);
  DecomposedGrid D(Dims, 3, 1);
  D.scatter(Global);
  Grid Back(Dims, 1);
  D.gather(Back);
  EXPECT_EQ(Grid::maxAbsDiffInterior(Global, Back), 0.0);
}

TEST(DecomposedGrid, ScatterGatherRoundTripDeepHaloUneven) {
  // Halo deeper than the global grid's own halo, Nz not divisible by
  // Ranks: scatter zero-fills the unreachable halo cells and gather
  // reads owned planes only.
  GridDims Dims{7, 6, 11};
  Grid Global = randomGlobal(Dims, 1);
  DecomposedGrid D(Dims, 4, 3);
  D.scatter(Global);
  Grid Back(Dims, 1);
  D.gather(Back);
  EXPECT_EQ(Grid::maxAbsDiffInterior(Global, Back), 0.0);
}

TEST(DecomposedGrid, ScatterFillsExtensionsAndHalos) {
  GridDims Dims{6, 6, 9};
  Grid Global = randomGlobal(Dims, 1);
  DecomposedGrid D(Dims, 3, 1);
  D.scatter(Global);
  // Rank 1 owns [3, 6) with one extension plane on each side: its local
  // plane 0 is global plane 2, and its bottom *halo* plane is global 1.
  ASSERT_EQ(D.rankZBegin(1), 3);
  ASSERT_EQ(D.rankExtLo(1), 1);
  EXPECT_EQ(D.rank(1).at(2, 3, 0), Global.at(2, 3, 2));
  EXPECT_EQ(D.rank(1).at(2, 3, -1), Global.at(2, 3, 1));
  // Rank 0's bottom halo is the global physical boundary.
  EXPECT_EQ(D.rank(0).at(2, 3, -1), Global.at(2, 3, -1));
}

TEST(DecomposedGrid, ExchangeRefreshesStaleExtensions) {
  GridDims Dims{6, 6, 8};
  Grid Global = randomGlobal(Dims, 1);
  DecomposedGrid D(Dims, 2, 1);
  D.scatter(Global);
  // Perturb rank 0's top *owned* plane (global plane 3), then exchange:
  // rank 1's low extension plane (local z == 0) must see the new value.
  long TopOwned = D.rankExtLo(0) + (D.rankZEnd(0) - D.rankZBegin(0)) - 1;
  D.rank(0).at(3, 3, TopOwned) = 123.0;
  D.exchangeHalos();
  EXPECT_EQ(D.rank(1).at(3, 3, 0), 123.0);
  EXPECT_GT(D.haloBytesExchanged(), 0ull);
}

TEST(DecomposedGrid, StagedExchangeMatchesSerialExchange) {
  // pack + unpack must land exactly the values the element-wise serial
  // path lands, for the contiguous-plane fast path (scalar and z-major
  // folds) and the element-wise fold fallback alike.
  GridDims Dims{9, 7, 12};
  for (Fold F : {Fold{1, 1, 1}, Fold{2, 2, 1}, Fold{1, 2, 2}}) {
    Grid Global(Dims, 2);
    Rng R(11);
    Global.fillRandom(R);
    DecomposedGrid Serial(Dims, 3, 2, F), Staged(Dims, 3, 2, F);
    Serial.scatter(Global);
    Staged.scatter(Global);
    // Make the slabs diverge from the scatter state so the exchange has
    // real work to do.
    for (unsigned Rk = 0; Rk < 3; ++Rk) {
      Rng RR(100 + Rk);
      Serial.rank(Rk).fillRandom(RR);
      Rng RS(100 + Rk);
      Staged.rank(Rk).fillRandom(RS);
    }
    Serial.exchangeHalos();
    Staged.packHalos();
    for (size_t I = 0; I < Staged.numCopyRuns(); ++I)
      Staged.unpackRun(I);
    for (unsigned Rk = 0; Rk < 3; ++Rk)
      EXPECT_EQ(Grid::maxAbsDiffInterior(Serial.rank(Rk), Staged.rank(Rk)),
                0.0)
          << "rank " << Rk << " fold " << F.str();
  }
}

TEST(DecomposedGrid, HaloByteAccountingPinned) {
  // The counter must equal what the copy loops actually move.  Serial
  // path: element-wise planes spanning the (Nx+2H)*(Ny+2H) halo ring —
  // the old counter assumed Nx*Ny and undercounted.  Staged path: whole
  // padded planes, moved twice (grid -> staging -> grid).
  GridDims Dims{8, 6, 12};
  int Halo = 2;
  DecomposedGrid D(Dims, 3, Halo);
  unsigned long long Planes = exchangedPlanes(D);
  ASSERT_EQ(Planes, 4ull * Halo); // 2 interior sides x 2 ranks each.

  D.exchangeHalos();
  unsigned long long SerialBytes =
      Planes * (Dims.Nx + 2 * Halo) * (Dims.Ny + 2 * Halo) * sizeof(double);
  EXPECT_EQ(D.haloBytesExchanged(), SerialBytes);

  D.packHalos();
  for (size_t I = 0; I < D.numCopyRuns(); ++I)
    D.unpackRun(I);
  unsigned long long StagedBytes =
      2 * Planes * static_cast<unsigned long long>(D.rank(0).padX()) *
      D.rank(0).padY() * sizeof(double);
  EXPECT_EQ(D.haloBytesExchanged(), SerialBytes + StagedBytes);
}

TEST(DistributedStepper, MatchesMonolithicTimeStepping) {
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{12, 10, 17};
  Grid Global = randomGlobal(Dims, 1);

  // Monolithic reference.
  Grid URef(Dims, 1);
  URef.copyInteriorFrom(Global);
  Grid Scratch(Dims, 1);
  KernelExecutor Exec(S, KernelConfig());
  Exec.runTimeSteps(URef, Scratch, 5);

  for (unsigned Ranks : {1u, 3u, 5u}) {
    for (ExchangeMode Mode :
         {ExchangeMode::Serial, ExchangeMode::Overlapped}) {
      DecomposedGrid U(Dims, Ranks, 1), V(Dims, Ranks, 1);
      U.scatter(Global);
      Grid Zero(Dims, 1);
      V.scatter(Zero);
      DistributedStepper Stepper(S, KernelConfig());
      Stepper.setExchangeMode(Mode);
      Stepper.runTimeSteps(U, V, 5);
      Grid Result(Dims, 1);
      U.gather(Result);
      EXPECT_EQ(Grid::maxAbsDiffInterior(URef, Result), 0.0)
          << Ranks << " ranks, mode "
          << (Mode == ExchangeMode::Serial ? "serial" : "overlapped");
    }
  }
}

TEST(DistributedStepper, MatchesWithWideStencilAndRankParallel) {
  StencilSpec S = StencilSpec::star3d(2);
  GridDims Dims{10, 10, 16};
  Grid Global = randomGlobal(Dims, 2, 21);

  Grid URef(Dims, 2);
  URef.copyInteriorFrom(Global);
  Grid Scratch(Dims, 2);
  KernelExecutor Exec(S, KernelConfig());
  Exec.runTimeSteps(URef, Scratch, 4);

  ThreadPool Pool(3);
  for (ExchangeMode Mode :
       {ExchangeMode::Serial, ExchangeMode::Overlapped}) {
    DecomposedGrid U(Dims, 4, 2), V(Dims, 4, 2);
    U.scatter(Global);
    Grid Zero(Dims, 2);
    V.scatter(Zero);
    DistributedStepper Stepper(S, KernelConfig());
    Stepper.setExchangeMode(Mode);
    Stepper.runTimeSteps(U, V, 4, &Pool);
    Grid Result(Dims, 2);
    U.gather(Result);
    EXPECT_EQ(Grid::maxAbsDiffInterior(URef, Result), 0.0);
  }
}

TEST(DistributedStepper, DeepHaloAmortizesExchangesAndStaysExact) {
  // Halo = 3 * radius buys 3 fused steps per exchange: 7 steps cost
  // ceil(7/3) = 3 exchange rounds, and the result is still bit-identical
  // to the monolithic run.  Uneven split (17 planes over 3 ranks) and a
  // halo deeper than the stencil radius, per the satellite checklist.
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{10, 8, 17};
  Grid Global = randomGlobal(Dims, 1, 33);

  Grid URef(Dims, 1);
  URef.copyInteriorFrom(Global);
  Grid Scratch(Dims, 1);
  KernelExecutor Exec(S, KernelConfig());
  Exec.runTimeSteps(URef, Scratch, 7);

  for (ExchangeMode Mode :
       {ExchangeMode::Serial, ExchangeMode::Overlapped}) {
    DecomposedGrid U(Dims, 3, 3), V(Dims, 3, 3);
    U.scatter(Global);
    Grid Zero(Dims, 1);
    V.scatter(Zero);
    DistributedStepper Stepper(S, KernelConfig());
    Stepper.setExchangeMode(Mode);
    EXPECT_EQ(Stepper.stepsPerExchange(3), 3);
    Stepper.runTimeSteps(U, V, 7);
    EXPECT_EQ(Stepper.exchangeRounds(), 3ull);
    Grid Result(Dims, 1);
    U.gather(Result);
    EXPECT_EQ(Grid::maxAbsDiffInterior(URef, Result), 0.0);
  }
}

TEST(DistributedStepper, OverlappedMatchesSerialAcrossSchedules) {
  // Overlapped stepping must be bit-identical to the serial baseline and
  // to the monolithic executor for every temporal schedule, with deep
  // halos sized to the fusion depth (one exchange per macro step).
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{11, 9, 19};
  Grid Global = randomGlobal(Dims, 1, 5);
  ThreadPool Pool(4);
  int Steps = 6;

  for (Schedule Sched : {Schedule::Sweep, Schedule::Wavefront,
                         Schedule::Diamond, Schedule::DeepTemporal}) {
    KernelConfig Cfg;
    if (Sched != Schedule::Sweep) {
      Cfg.Sched = Sched;
      Cfg.WavefrontDepth = 2;
      if (Sched != Schedule::DeepTemporal)
        Cfg.Block.Z = 4;
    }
    ASSERT_EQ(Cfg.validate(), "");

    Grid URef(Dims, 1);
    URef.copyInteriorFrom(Global);
    Grid Scratch(Dims, 1);
    KernelExecutor Exec(S, Cfg);
    Exec.runTimeSteps(URef, Scratch, Steps);

    int Halo = 2; // depth * radius: one exchange per macro step.
    for (ExchangeMode Mode :
         {ExchangeMode::Serial, ExchangeMode::Overlapped}) {
      DecomposedGrid U(Dims, 3, Halo), V(Dims, 3, Halo);
      U.scatter(Global);
      Grid Zero(Dims, 1);
      V.scatter(Zero);
      DistributedStepper Stepper(S, Cfg);
      Stepper.setExchangeMode(Mode);
      Stepper.runTimeSteps(U, V, Steps, &Pool);
      EXPECT_EQ(Stepper.exchangeRounds(),
                static_cast<unsigned long long>(Steps / 2));
      Grid Result(Dims, 1);
      U.gather(Result);
      EXPECT_EQ(Grid::maxAbsDiffInterior(URef, Result), 0.0)
          << scheduleName(Sched) << " mode "
          << (Mode == ExchangeMode::Serial ? "serial" : "overlapped");
    }
  }
}

TEST(DistributedStepper, FoldedLayoutMatchesMonolithic) {
  // Folded storage exercises the staged exchange's fast path (fold.Z==1,
  // contiguous planes) and the element-wise fallback (fold.Z > 1).
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{12, 8, 14};
  Grid Global = randomGlobal(Dims, 1, 9);
  for (Fold F : {Fold{4, 1, 1}, Fold{1, 2, 2}}) {
    KernelConfig Cfg;
    Cfg.VectorFold = F;

    Grid URef(Dims, 1, F);
    URef.copyInteriorFrom(Global);
    Grid Scratch(Dims, 1, F);
    KernelExecutor Exec(S, Cfg);
    Exec.runTimeSteps(URef, Scratch, 3);

    DecomposedGrid U(Dims, 3, 2, F), V(Dims, 3, 2, F);
    U.scatter(Global);
    Grid Zero(Dims, 1, F);
    V.scatter(Zero);
    DistributedStepper Stepper(S, Cfg);
    Stepper.runTimeSteps(U, V, 3);
    Grid Result(Dims, 1, F);
    U.gather(Result);
    EXPECT_EQ(Grid::maxAbsDiffInterior(URef, Result), 0.0)
        << "fold " << F.str();
  }
}

TEST(DistributedStepper, HaloTrafficScalesWithRanksAndSteps) {
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{8, 8, 12};
  Grid Global = randomGlobal(Dims, 1);
  DecomposedGrid U2(Dims, 2, 1), V2(Dims, 2, 1);
  DecomposedGrid U4(Dims, 4, 1), V4(Dims, 4, 1);
  U2.scatter(Global);
  U4.scatter(Global);
  DistributedStepper Stepper(S, KernelConfig());
  Stepper.setExchangeMode(ExchangeMode::Serial);
  Stepper.runTimeSteps(U2, V2, 3);
  Stepper.runTimeSteps(U4, V4, 3);
  // 4 ranks refresh 6 extension sides vs 2: 3x the halo traffic.  Only
  // the source decomposition exchanges (one exchange per macro step).
  EXPECT_EQ(U4.haloBytesExchanged(), 3 * U2.haloBytesExchanged());
  EXPECT_EQ(V2.haloBytesExchanged(), 0ull);
}
