//===- tests/TraceTest.cpp - Structured-trace and JSON helper tests --------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "codegen/KernelExecutor.h"
#include "support/Json.h"
#include "tuner/MeasureHarness.h"
#include "tuner/OnlineTuner.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

using namespace ys;

namespace {

std::vector<std::string> readLines(const std::string &Path) {
  std::vector<std::string> Lines;
  std::ifstream In(Path);
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      Lines.push_back(Line);
  return Lines;
}

/// Fresh trace file in TempDir (removes any leftover — openFile appends).
std::string traceFile(const char *Name) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::remove(Path.c_str());
  return Path;
}

size_t countPhase(const std::vector<std::string> &Lines,
                  const std::string &Phase) {
  size_t N = 0;
  for (const std::string &L : Lines)
    if (jsonStringField(L, "phase") == Phase)
      ++N;
  return N;
}

/// RAII guard: whatever a test does, the process-global trace sink is
/// closed again before the next test runs.
struct TraceSession {
  explicit TraceSession(const std::string &Path) { Trace::openFile(Path); }
  ~TraceSession() { Trace::close(); }
};

} // namespace

TEST(Json, EscapeUnescapeRoundTrip) {
  std::string Nasty = "a \"quoted\" \\ back\\slash\nnewline\ttab";
  std::string Escaped = jsonEscape(Nasty);
  EXPECT_EQ(Escaped.find('\n'), std::string::npos);
  EXPECT_EQ(jsonUnescape(Escaped), Nasty);
  EXPECT_EQ(jsonEscape(""), "");
}

TEST(Json, ObjectWriterAndFieldExtraction) {
  std::string Obj = JsonObjectWriter()
                        .field("name", "star3d \"r2\"")
                        .field("mlups", 1234.5)
                        .field("steps", (long)-3)
                        .field("runs", (unsigned long long)7)
                        .str();
  EXPECT_TRUE(jsonLooksWellFormed(Obj));
  EXPECT_EQ(jsonStringField(Obj, "name"), "star3d \"r2\"");
  EXPECT_EQ(jsonNumberField(Obj, "mlups"), 1234.5);
  EXPECT_EQ(jsonNumberField(Obj, "steps"), -3.0);
  EXPECT_EQ(jsonNumberField(Obj, "runs"), 7.0);
  // Absent key / wrong kind.
  EXPECT_FALSE(jsonStringField(Obj, "missing").has_value());
  EXPECT_FALSE(jsonNumberField(Obj, "name").has_value());
  EXPECT_FALSE(jsonStringField(Obj, "mlups").has_value());
}

TEST(Json, BoolFieldsWriteBareTokensAndReadBack) {
  std::string Obj = JsonObjectWriter()
                        .field("ok", true)
                        .field("bad", false)
                        .field("name", "true")
                        .str();
  EXPECT_TRUE(jsonLooksWellFormed(Obj));
  EXPECT_NE(Obj.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(Obj.find("\"bad\":false"), std::string::npos);
  EXPECT_EQ(jsonBoolField(Obj, "ok"), true);
  EXPECT_EQ(jsonBoolField(Obj, "bad"), false);
  // Quoted "true" is a string, not a bool; absent keys stay absent.
  EXPECT_FALSE(jsonBoolField(Obj, "name").has_value());
  EXPECT_FALSE(jsonBoolField(Obj, "missing").has_value());
}

TEST(Json, WellFormedRejectsBrokenLines) {
  EXPECT_TRUE(jsonLooksWellFormed("{}"));
  EXPECT_TRUE(jsonLooksWellFormed("{\"a\":\"b{not nesting}\"}"));
  EXPECT_FALSE(jsonLooksWellFormed(""));
  EXPECT_FALSE(jsonLooksWellFormed("not json"));
  EXPECT_FALSE(jsonLooksWellFormed("{\"a\":1"));       // Unterminated.
  EXPECT_FALSE(jsonLooksWellFormed("{\"a\":\"b}"));    // Unbalanced quote.
  EXPECT_FALSE(jsonLooksWellFormed("{\"a\":{\"b\":1}}")); // Nested.
}

TEST(Trace, DisabledByDefaultAndNoOpSafe) {
  ASSERT_FALSE(Trace::enabled());
  // Every entry point must be a harmless no-op when disabled.
  TraceRecord Rec("noop");
  Rec.field("x", 1.0).field("y", "z");
  Rec.emit();
  { TraceScope Scope("noop_scope"); }
  Trace::addCounter("nope", 5);
  Trace::emitLine("{\"phase\":\"ignored\"}");
  EXPECT_EQ(Trace::now(), 0.0);
  Trace::close(); // Safe when nothing is open.
}

TEST(Trace, RecordsScopesAndCountersAreWellFormedJsonLines) {
  std::string Path = traceFile("ys_trace_unit.jsonl");
  {
    TraceSession Session(Path);
    ASSERT_TRUE(Trace::enabled());

    TraceRecord Rec("unit_test");
    Rec.field("label", "first \"record\"")
        .field("value", 2.5)
        .field("count", 3);
    Rec.emit();

    { TraceScope Scope("unit_scope"); Scope.field("tag", "scoped"); }

    Trace::addCounter("widgets", 2);
    Trace::addCounter("widgets", 3);
    Trace::addCounter("gadgets");
  } // close() flushes the counters record.
  EXPECT_FALSE(Trace::enabled());

  std::vector<std::string> Lines = readLines(Path);
  ASSERT_EQ(Lines.size(), 3u);
  for (const std::string &L : Lines) {
    EXPECT_TRUE(jsonLooksWellFormed(L)) << L;
    EXPECT_TRUE(jsonNumberField(L, "ts").has_value()) << L;
  }

  EXPECT_EQ(jsonStringField(Lines[0], "phase"), "unit_test");
  EXPECT_EQ(jsonStringField(Lines[0], "label"), "first \"record\"");
  EXPECT_EQ(jsonNumberField(Lines[0], "value"), 2.5);
  EXPECT_EQ(jsonNumberField(Lines[0], "count"), 3.0);

  EXPECT_EQ(jsonStringField(Lines[1], "phase"), "unit_scope");
  EXPECT_EQ(jsonStringField(Lines[1], "tag"), "scoped");
  ASSERT_TRUE(jsonNumberField(Lines[1], "seconds").has_value());
  EXPECT_GE(*jsonNumberField(Lines[1], "seconds"), 0.0);

  EXPECT_EQ(jsonStringField(Lines[2], "phase"), "counters");
  EXPECT_EQ(jsonNumberField(Lines[2], "widgets"), 5.0);
  EXPECT_EQ(jsonNumberField(Lines[2], "gadgets"), 1.0);

  std::remove(Path.c_str());
}

TEST(Trace, ReopeningStartsANewEpoch) {
  std::string A = traceFile("ys_trace_a.jsonl");
  std::string B = traceFile("ys_trace_b.jsonl");
  ASSERT_TRUE(Trace::openFile(A));
  TraceRecord R1("one");
  R1.emit();
  ASSERT_TRUE(Trace::openFile(B)); // Implicitly closes A.
  TraceRecord R2("two");
  R2.emit();
  Trace::close();
  EXPECT_EQ(readLines(A).size(), 1u);
  EXPECT_EQ(readLines(B).size(), 1u);
  std::remove(A.c_str());
  std::remove(B.c_str());
}

TEST(Trace, MeasureHarnessEmitsMeasureRecords) {
  std::string Path = traceFile("ys_trace_measure.jsonl");
  {
    TraceSession Session(Path);
    MeasureHarness H(StencilSpec::heat3d(), {16, 16, 16}, /*Repeats=*/2,
                     /*SweepsPerRepeat=*/1);
    KernelConfig C;
    C.Block.Y = 8;
    H.measure(C);
  }
  std::vector<std::string> Lines = readLines(Path);
  ASSERT_EQ(countPhase(Lines, "measure"), 1u);
  for (const std::string &L : Lines) {
    EXPECT_TRUE(jsonLooksWellFormed(L)) << L;
    if (jsonStringField(L, "phase") != "measure")
      continue;
    EXPECT_TRUE(jsonStringField(L, "config").has_value());
    EXPECT_EQ(jsonStringField(L, "stencil"), "heat3d");
    EXPECT_EQ(jsonNumberField(L, "cached"), 0.0);
    ASSERT_TRUE(jsonNumberField(L, "mlups").has_value());
    EXPECT_GT(*jsonNumberField(L, "mlups"), 0.0);
    ASSERT_TRUE(jsonNumberField(L, "min_seconds").has_value());
    EXPECT_GT(*jsonNumberField(L, "min_seconds"), 0.0);
  }
  std::remove(Path.c_str());
}

TEST(Trace, OnlineTunerEmitsTrialAndSummaryRecords) {
  std::string Path = traceFile("ys_trace_online.jsonl");
  {
    TraceSession Session(Path);
    StencilSpec S = StencilSpec::heat3d();
    GridDims Dims{12, 12, 12};
    Grid U(Dims, 1), Scratch(Dims, 1);
    Rng R(7);
    U.fillRandom(R);
    KernelConfig A;
    KernelConfig B;
    B.Block.Y = 4;
    OnlineTuner Tuner(S, {A, B}, 2);
    Tuner.run(U, Scratch, 16);
  }
  std::vector<std::string> Lines = readLines(Path);
  for (const std::string &L : Lines)
    EXPECT_TRUE(jsonLooksWellFormed(L)) << L;
  EXPECT_EQ(countPhase(Lines, "online_trial"), 2u);
  EXPECT_EQ(countPhase(Lines, "online_warmup"), 1u);
  ASSERT_EQ(countPhase(Lines, "online_summary"), 1u);
  // kernel_steps records come from KernelExecutor::runTimeSteps (warm-up
  // and production both route through it).
  EXPECT_GE(countPhase(Lines, "kernel_steps"), 1u);
  for (const std::string &L : Lines) {
    std::optional<std::string> Phase = jsonStringField(L, "phase");
    if (Phase == "online_trial") {
      EXPECT_EQ(jsonNumberField(L, "cached"), 0.0);
      ASSERT_TRUE(jsonNumberField(L, "seconds_per_step").has_value());
      EXPECT_GT(*jsonNumberField(L, "seconds_per_step"), 0.0);
    } else if (Phase == "online_summary") {
      EXPECT_EQ(jsonStringField(L, "stencil"), "heat3d");
      EXPECT_EQ(jsonNumberField(L, "trials"), 2.0);
      EXPECT_EQ(jsonNumberField(L, "cached_trials"), 0.0);
    }
  }
  std::remove(Path.c_str());
}
