//===- tests/RegistryTest.cpp - named registry tests --------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ode/Registry.h"

#include "driver/Driver.h"

#include <gtest/gtest.h>

using namespace ys;

TEST(Registry, TableauLookup) {
  auto T = tableauByName("rk4");
  ASSERT_TRUE(static_cast<bool>(T));
  EXPECT_EQ(T->Stages, 4u);
  auto Radau = tableauByName("radauIIA2");
  ASSERT_TRUE(static_cast<bool>(Radau));
  EXPECT_FALSE(Radau->isExplicit());
  EXPECT_FALSE(static_cast<bool>(tableauByName("rk99")));
}

TEST(Registry, TableauNamesCoverAllBuiltins) {
  std::vector<std::string> Names = tableauNames();
  EXPECT_EQ(Names.size(), ButcherTableau::allExplicit().size() +
                              ButcherTableau::allImplicitBases().size());
  for (const std::string &Name : Names)
    EXPECT_TRUE(static_cast<bool>(tableauByName(Name))) << Name;
}

TEST(Registry, VariantLookup) {
  auto A = rkVariantByName("stage-separate");
  ASSERT_TRUE(static_cast<bool>(A));
  EXPECT_EQ(*A, RKVariant::StageSeparate);
  auto B = rkVariantByName("fused");
  ASSERT_TRUE(static_cast<bool>(B));
  EXPECT_EQ(*B, RKVariant::FusedArgument);
  auto C = rkVariantByName("fused-update");
  ASSERT_TRUE(static_cast<bool>(C));
  EXPECT_EQ(*C, RKVariant::FusedUpdate);
  EXPECT_FALSE(static_cast<bool>(rkVariantByName("magic")));
}

TEST(Registry, IvpLookup) {
  for (const std::string &Name : ivpNames()) {
    auto P = ivpByName(Name, 8);
    ASSERT_TRUE(static_cast<bool>(P)) << Name;
    EXPECT_EQ((*P)->name(), Name);
  }
  EXPECT_FALSE(static_cast<bool>(ivpByName("nonsense", 8)));
  EXPECT_FALSE(static_cast<bool>(ivpByName("heat3d", 2)));
}

TEST(Driver, OdeCommandIntegrates) {
  std::string Out;
  int Code = runDriver({"ode", "rk4", "--ivp", "heat3d", "--n", "12",
                        "--steps", "4"},
                       Out);
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("variants of rk4 on heat3d"), std::string::npos);
  EXPECT_NE(Out.find("integrated 4 steps"), std::string::npos);
  EXPECT_NE(Out.find("max error vs exact"), std::string::npos);
}

TEST(Driver, OdeCommandHonorsVariantFlag) {
  std::string Out;
  int Code = runDriver({"ode", "heun2", "--ivp", "heat2d", "--n", "12",
                        "--steps", "3", "--variant", "stage-separate"},
                       Out);
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("with stage-separate"), std::string::npos);
}

TEST(Driver, OdeCommandNonStencilIvp) {
  std::string Out;
  int Code = runDriver({"ode", "rk4", "--ivp", "inverter-chain", "--n",
                        "64", "--steps", "3"},
                       Out);
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("inverter-chain"), std::string::npos);
}

TEST(Driver, OdeCommandRejectsImplicitMethod) {
  std::string Out;
  EXPECT_EQ(runDriver({"ode", "gauss2", "--n", "8"}, Out), 1);
  EXPECT_NE(Out.find("implicit"), std::string::npos);
}

TEST(Driver, OdeCommandRejectsUnknownMethod) {
  std::string Out;
  EXPECT_EQ(runDriver({"ode", "rk99", "--n", "8"}, Out), 1);
  EXPECT_NE(Out.find("unknown method"), std::string::npos);
}

TEST(Driver, TuneDbBuildAndQuery) {
  std::string Path = testing::TempDir() + "/drv_tunedb.txt";
  std::string Out;
  int Code = runDriver({"tunedb", "build", Path, "--machine", "rome",
                        "--n", "16"},
                       Out);
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("zero kernel executions"), std::string::npos);

  Out.clear();
  Code = runDriver({"tunedb", "query", Path, "rk4", "--machine", "rome",
                    "--ivp", "heat3d", "--n", "16"},
                   Out);
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("rk4/"), std::string::npos);

  // Nearest-size fallback.
  Out.clear();
  Code = runDriver({"tunedb", "query", Path, "rk4", "--machine", "rome",
                    "--ivp", "heat3d", "--n", "48"},
                   Out);
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("[nearest size]"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Driver, TuneDbQueryMissingRecord) {
  std::string Path = testing::TempDir() + "/drv_tunedb2.txt";
  std::string Out;
  ASSERT_EQ(runDriver({"tunedb", "build", Path, "--n", "16"}, Out), 0);
  Out.clear();
  EXPECT_EQ(runDriver({"tunedb", "query", Path, "rk4", "--machine",
                       "zen3", "--ivp", "heat3d", "--n", "16"},
                      Out),
            1);
  EXPECT_NE(Out.find("no record"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Driver, TuneDbRejectsBadSubcommand) {
  std::string Out;
  EXPECT_EQ(runDriver({"tunedb", "frob", "/tmp/x"}, Out), 1);
  EXPECT_NE(Out.find("unknown tunedb subcommand"), std::string::npos);
}
