//===- tests/StencilBundleTest.cpp - multi-equation bundle tests -----------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stencil/StencilBundle.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

/// grid2 = star(grid0); grid3 = star(grid2): a two-stage chain.
StencilBundle chainBundle() {
  BundleEquation E0;
  E0.OutputGrid = 2;
  E0.Spec = StencilSpec::star3d(1);
  BundleEquation E1;
  E1.OutputGrid = 3;
  std::vector<StencilPoint> Pts = StencilSpec::star3d(1).points();
  for (StencilPoint &P : Pts)
    P.GridIdx = 2;
  E1.Spec = StencilSpec("stage2", Pts);
  return StencilBundle("chain", {"u", "v", "k1", "k2"}, {E0, E1});
}

} // namespace

TEST(StencilBundle, ValidatesChain) {
  EXPECT_EQ(chainBundle().validate(), "");
}

TEST(StencilBundle, ReadsOf) {
  StencilBundle B = chainBundle();
  EXPECT_EQ(B.readsOf(0), std::vector<unsigned>{0});
  EXPECT_EQ(B.readsOf(1), std::vector<unsigned>{2});
}

TEST(StencilBundle, DependsOn) {
  StencilBundle B = chainBundle();
  EXPECT_TRUE(B.dependsOn(1, 0));  // Eq 1 reads grid 2 = eq 0's output.
  EXPECT_FALSE(B.dependsOn(0, 1));
}

TEST(StencilBundle, FusionIllegalAcrossNeighborDependence) {
  StencilBundle B = chainBundle();
  // Eq 1 reads eq 0's output at nonzero offsets: cannot fuse.
  EXPECT_FALSE(B.fusionLegal(0, 1));
}

TEST(StencilBundle, FusionLegalForPointwiseDependence) {
  // k = star(u); v = u + k (pointwise use of k).
  BundleEquation E0;
  E0.OutputGrid = 1;
  E0.Spec = StencilSpec::star3d(1);
  BundleEquation E1;
  E1.OutputGrid = 2;
  E1.Spec = StencilSpec("update", {{0, 0, 0, 1.0, 0}, {0, 0, 0, 0.5, 1}});
  StencilBundle B("step", {"u", "k", "v"}, {E0, E1});
  EXPECT_EQ(B.validate(), "");
  EXPECT_TRUE(B.fusionLegal(0, 1));
}

TEST(StencilBundle, FusionIllegalWhenWritingSameGrid) {
  BundleEquation E0;
  E0.OutputGrid = 1;
  E0.Spec = StencilSpec::star3d(1);
  BundleEquation E1 = E0;
  StencilBundle B("clash", {"u", "k"}, {E0, E1});
  EXPECT_FALSE(B.fusionLegal(0, 1));
}

TEST(StencilBundle, GreedyGroupsRespectDependences) {
  StencilBundle B = chainBundle();
  auto Groups = B.greedyFusionGroups();
  ASSERT_EQ(Groups.size(), 2u);
  EXPECT_EQ(Groups[0], std::vector<unsigned>{0});
  EXPECT_EQ(Groups[1], std::vector<unsigned>{1});
}

TEST(StencilBundle, GreedyGroupsFusePointwiseChain) {
  BundleEquation E0;
  E0.OutputGrid = 1;
  E0.Spec = StencilSpec::star3d(1);
  BundleEquation E1;
  E1.OutputGrid = 2;
  E1.Spec = StencilSpec("update", {{0, 0, 0, 1.0, 0}, {0, 0, 0, 0.5, 1}});
  StencilBundle B("step", {"u", "k", "v"}, {E0, E1});
  auto Groups = B.greedyFusionGroups();
  ASSERT_EQ(Groups.size(), 1u);
  EXPECT_EQ(Groups[0].size(), 2u);
}

TEST(StencilBundle, ChainedHaloAccumulates) {
  StencilBundle B = chainBundle();
  EXPECT_EQ(B.maxRadius(), 1);
  EXPECT_EQ(B.chainedHalo(), 2); // Two radius-1 stages back to back.
}

TEST(StencilBundle, ChainedHaloIndependentStagesDoNotAccumulate) {
  BundleEquation E0;
  E0.OutputGrid = 1;
  E0.Spec = StencilSpec::star3d(2);
  BundleEquation E1;
  E1.OutputGrid = 2;
  E1.Spec = StencilSpec::star3d(1); // Also reads grid 0 only.
  StencilBundle B("indep", {"u", "k1", "k2"}, {E0, E1});
  EXPECT_EQ(B.chainedHalo(), 2);
}

TEST(StencilBundle, ValidateRejectsInPlaceStencil) {
  BundleEquation E;
  E.OutputGrid = 0; // Writes the grid it reads with offsets.
  E.Spec = StencilSpec::star3d(1);
  StencilBundle B("inplace", {"u"}, {E});
  EXPECT_NE(B.validate(), "");
}

TEST(StencilBundle, ValidateRejectsOutOfRangeGrids) {
  BundleEquation E;
  E.OutputGrid = 5;
  E.Spec = StencilSpec::star3d(1);
  StencilBundle B("oob", {"u"}, {E});
  EXPECT_NE(B.validate(), "");
}

TEST(StencilBundle, ValidateRejectsEmpty) {
  StencilBundle B("empty", {"u"}, {});
  EXPECT_NE(B.validate(), "");
}
