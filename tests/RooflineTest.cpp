//===- tests/RooflineTest.cpp - roofline baseline + overlap ECM tests --------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ecm/ECMModel.h"
#include "ecm/Roofline.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

const GridDims BigDims{512, 512, 256};

KernelConfig avx512() {
  KernelConfig C;
  C.VectorFold.X = 8;
  return C;
}

} // namespace

TEST(Roofline, HeatIsMemoryBoundAtSocketScale) {
  MachineModel M = MachineModel::cascadeLakeSP();
  RooflineModel R(M);
  RooflinePrediction P =
      R.predict(StencilSpec::heat3d(), BigDims, avx512(), 20);
  EXPECT_TRUE(P.MemoryBound);
  // At 20 active cores the per-core L3 share drops below the plane
  // footprint, leaving row reuse: 3 streams + store + WA = 40 B/LUP at
  // 115 GB/s -> 2875 MLUP/s.
  EXPECT_NEAR(P.BytesPerLup, 40.0, 1e-9);
  EXPECT_NEAR(P.Mlups, 115.0 / 40.0 * 1e3, 1.0);
}

TEST(Roofline, ComputeBoundForHeavySingleCore) {
  MachineModel M = MachineModel::cascadeLakeSP();
  RooflineModel R(M);
  // box3d r2: 249 flops/LUP; single scalar core cannot reach the
  // bandwidth roof.
  KernelConfig Scalar;
  RooflinePrediction P =
      R.predict(StencilSpec::box3d(2), BigDims, Scalar, 1);
  EXPECT_FALSE(P.MemoryBound);
  EXPECT_LT(P.Gflops, P.MemGflops);
}

TEST(Roofline, PeakScalesWithCoresAndSimd) {
  MachineModel M = MachineModel::cascadeLakeSP();
  RooflineModel R(M);
  RooflinePrediction One =
      R.predict(StencilSpec::box3d(2), BigDims, avx512(), 1);
  RooflinePrediction Four =
      R.predict(StencilSpec::box3d(2), BigDims, avx512(), 4);
  EXPECT_NEAR(Four.PeakGflops, 4 * One.PeakGflops, 1e-9);
  KernelConfig Scalar;
  RooflinePrediction Sc =
      R.predict(StencilSpec::box3d(2), BigDims, Scalar, 1);
  EXPECT_NEAR(One.PeakGflops, 8 * Sc.PeakGflops, 1e-9);
}

TEST(Roofline, ECMIsMorePessimisticSingleCore) {
  // The paper's motivation for ECM over roofline: single-core roofline
  // ignores the in-cache transfer chain and overestimates performance.
  MachineModel M = MachineModel::cascadeLakeSP();
  RooflineModel R(M);
  ECMModel E(M);
  StencilSpec S = StencilSpec::heat3d();
  double Roof = R.predict(S, BigDims, avx512(), 1).Mlups;
  double Ecm = E.predict(S, BigDims, avx512()).MLupsSingleCore;
  EXPECT_LT(Ecm, Roof);
}

TEST(Roofline, ModelsAgreeAtSaturation) {
  // Both models hit the same bandwidth roof at full socket occupancy.
  MachineModel M = MachineModel::cascadeLakeSP();
  RooflineModel R(M);
  ECMModel E(M);
  StencilSpec S = StencilSpec::heat3d();
  double Roof = R.predict(S, BigDims, avx512(), 20).Mlups;
  // Same occupancy on both sides: 20 active cores sharing the L3.
  double Ecm = E.predict(S, BigDims, avx512(), 20).MLupsSaturated;
  EXPECT_NEAR(Roof, Ecm, Roof * 0.01);
}

TEST(OverlapECM, FullOverlapNeverSlower) {
  MachineModel M = MachineModel::rome();
  ECMModel Serial(M, 0.5, TransferOverlap::None);
  ECMModel Overlap(M, 0.5, TransferOverlap::Full);
  for (int Radius : {1, 2, 4}) {
    StencilSpec S = StencilSpec::star3d(Radius);
    KernelConfig C;
    C.VectorFold.X = 4;
    double TSerial = Serial.predict(S, BigDims, C).TECM;
    double TOverlap = Overlap.predict(S, BigDims, C).TECM;
    EXPECT_LE(TOverlap, TSerial) << Radius;
    EXPECT_GT(TOverlap, 0.0);
  }
}

TEST(OverlapECM, FullOverlapEqualsLargestTerm) {
  MachineModel M = MachineModel::rome();
  ECMModel Overlap(M, 0.5, TransferOverlap::Full);
  KernelConfig C;
  C.VectorFold.X = 4;
  ECMPrediction P = Overlap.predict(StencilSpec::heat3d(), BigDims, C);
  double MaxTerm = std::max(P.InCore.TOL, P.InCore.TnOL);
  for (double T : P.TData)
    MaxTerm = std::max(MaxTerm, T);
  EXPECT_DOUBLE_EQ(P.TECM, MaxTerm);
}

TEST(OverlapECM, SaturationPointMovesEarlier) {
  // With overlapping transfers the single-core time shrinks, so fewer
  // cores saturate the same memory bandwidth.
  MachineModel M = MachineModel::rome();
  ECMModel Serial(M, 0.5, TransferOverlap::None);
  ECMModel Overlap(M, 0.5, TransferOverlap::Full);
  KernelConfig C;
  C.VectorFold.X = 4;
  StencilSpec S = StencilSpec::star3d(2);
  EXPECT_LE(Overlap.predict(S, BigDims, C).SaturationCores,
            Serial.predict(S, BigDims, C).SaturationCores);
}
