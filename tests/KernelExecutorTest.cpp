//===- tests/KernelExecutorTest.cpp - executor correctness -----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Ground truth is the reference triple loop; every transformed path
/// (blocking, folding, threading, temporal wavefront) must reproduce it
/// exactly (same FP operations per point => bit-identical results).
///
//===----------------------------------------------------------------------===//

#include "codegen/KernelExecutor.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

Grid randomGrid(GridDims Dims, int Halo, Fold F = Fold(), uint64_t Seed = 1) {
  Grid G(Dims, Halo, F);
  Rng R(Seed);
  G.fillRandom(R);
  return G;
}

/// Runs reference and configured sweeps and returns the max abs diff.
double sweepDiff(const StencilSpec &Spec, GridDims Dims,
                 const KernelConfig &Config, ThreadPool *Pool = nullptr) {
  int Halo = Spec.radius();
  Grid In = randomGrid(Dims, Halo, Config.VectorFold);
  Grid OutRef(Dims, Halo, Config.VectorFold);
  Grid OutCfg(Dims, Halo, Config.VectorFold);

  KernelExecutor::runReference(Spec, {&In}, OutRef);
  KernelExecutor Exec(Spec, Config);
  Exec.runSweep({&In}, OutCfg, Pool);
  return Grid::maxAbsDiffInterior(OutRef, OutCfg);
}

} // namespace

TEST(KernelExecutor, UnblockedMatchesReference) {
  EXPECT_EQ(sweepDiff(StencilSpec::heat3d(), {16, 14, 12}, KernelConfig()),
            0.0);
}

TEST(KernelExecutor, LargeBoxStencil) {
  // box3d r2 has 125 points; exercises the dynamic point tables.
  EXPECT_EQ(sweepDiff(StencilSpec::box3d(2), {10, 10, 10}, KernelConfig()),
            0.0);
}

TEST(KernelExecutor, MultiInputStencil) {
  StencilSpec S("axpy3", {{0, 0, 0, 1.0, 0},
                          {0, 0, 0, 0.5, 1},
                          {1, 0, 0, 0.25, 2}});
  GridDims Dims{12, 10, 8};
  Grid A = randomGrid(Dims, 1, Fold(), 1);
  Grid B = randomGrid(Dims, 1, Fold(), 2);
  Grid C = randomGrid(Dims, 1, Fold(), 3);
  Grid OutRef(Dims, 1), OutCfg(Dims, 1);
  KernelExecutor::runReference(S, {&A, &B, &C}, OutRef);
  KernelExecutor Exec(S, KernelConfig());
  Exec.runSweep({&A, &B, &C}, OutCfg);
  EXPECT_EQ(Grid::maxAbsDiffInterior(OutRef, OutCfg), 0.0);
}

TEST(KernelExecutor, TimeSteppingEvenOdd) {
  // Result must land in U regardless of step parity.
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{10, 10, 10};
  for (int Steps : {1, 2, 3, 4}) {
    Grid U = randomGrid(Dims, 1);
    Grid Scratch(Dims, 1);
    Grid Want = randomGrid(Dims, 1);
    Grid Tmp(Dims, 1);
    // Reference: repeated out-of-place sweeps.
    for (int T = 0; T < Steps; ++T) {
      KernelExecutor::runReference(S, {&Want}, Tmp);
      Want.copyInteriorFrom(Tmp);
    }
    KernelExecutor Exec(S, KernelConfig());
    Exec.runTimeSteps(U, Scratch, Steps);
    EXPECT_EQ(Grid::maxAbsDiffInterior(U, Want), 0.0) << Steps << " steps";
  }
}

TEST(KernelExecutor, ZeroStepsIsIdentity) {
  GridDims Dims{6, 6, 6};
  Grid U = randomGrid(Dims, 1);
  Grid Copy(Dims, 1);
  Copy.copyInteriorFrom(U);
  Grid Scratch(Dims, 1);
  KernelExecutor Exec(StencilSpec::heat3d(), KernelConfig());
  Exec.runTimeSteps(U, Scratch, 0);
  EXPECT_EQ(Grid::maxAbsDiffInterior(U, Copy), 0.0);
}

TEST(KernelExecutor, ThreadedMatchesReference) {
  ThreadPool Pool(4);
  KernelConfig C;
  C.Threads = 4;
  C.Block.Z = 3; // Uneven block count vs. threads.
  EXPECT_EQ(sweepDiff(StencilSpec::star3d(2), {20, 16, 14}, C, &Pool), 0.0);
}

TEST(KernelExecutor, HaloProvidesBoundary) {
  // Nonzero halo must contribute to edge results.
  StencilSpec S = StencilSpec::star3d(1, 0.0, 1.0);
  GridDims Dims{4, 4, 4};
  Grid In(Dims, 1);
  In.fill(0.0);
  In.fillHalo(2.0);
  Grid Out(Dims, 1);
  KernelExecutor::runReference(S, {&In}, Out);
  // Corner cell sees 3 halo neighbors of value 2.
  EXPECT_DOUBLE_EQ(Out.at(0, 0, 0), 6.0);
  // Center cell sees none.
  EXPECT_DOUBLE_EQ(Out.at(2, 2, 2), 0.0);
}

//===----------------------------------------------------------------------===//
// Property sweep: blocking configurations.
//===----------------------------------------------------------------------===//

struct BlockCase {
  long Bx, By, Bz;
};

class BlockingEquivalence : public ::testing::TestWithParam<BlockCase> {};

TEST_P(BlockingEquivalence, Heat3dMatchesReference) {
  BlockCase P = GetParam();
  KernelConfig C;
  C.Block.X = P.Bx;
  C.Block.Y = P.By;
  C.Block.Z = P.Bz;
  EXPECT_EQ(sweepDiff(StencilSpec::heat3d(), {17, 13, 11}, C), 0.0);
}

TEST_P(BlockingEquivalence, Star3dR3MatchesReference) {
  BlockCase P = GetParam();
  KernelConfig C;
  C.Block.X = P.Bx;
  C.Block.Y = P.By;
  C.Block.Z = P.Bz;
  EXPECT_EQ(sweepDiff(StencilSpec::star3d(3), {19, 12, 9}, C), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Blocks, BlockingEquivalence,
    ::testing::Values(BlockCase{0, 0, 0}, BlockCase{4, 0, 0},
                      BlockCase{0, 4, 0}, BlockCase{0, 0, 4},
                      BlockCase{8, 4, 2}, BlockCase{5, 3, 7},
                      BlockCase{1, 1, 1}, BlockCase{64, 64, 64}));

//===----------------------------------------------------------------------===//
// Property sweep: folded layouts.
//===----------------------------------------------------------------------===//

struct FoldCase {
  int Fx, Fy, Fz;
};

class FoldEquivalence : public ::testing::TestWithParam<FoldCase> {};

TEST_P(FoldEquivalence, FoldedSweepMatchesScalar) {
  FoldCase P = GetParam();
  Fold F;
  F.X = P.Fx;
  F.Y = P.Fy;
  F.Z = P.Fz;
  StencilSpec S = StencilSpec::star3d(1);
  GridDims Dims{14, 10, 9};
  // Scalar reference.
  Grid InScalar = randomGrid(Dims, 1);
  Grid OutScalar(Dims, 1);
  KernelExecutor::runReference(S, {&InScalar}, OutScalar);
  // Folded run with the same values.
  Grid InFolded(Dims, 1, F);
  InFolded.copyInteriorFrom(InScalar);
  Grid OutFolded(Dims, 1, F);
  KernelConfig C;
  C.VectorFold = F;
  C.Block.Y = 4;
  KernelExecutor Exec(S, C);
  Exec.runSweep({&InFolded}, OutFolded);
  EXPECT_EQ(Grid::maxAbsDiffInterior(OutScalar, OutFolded), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Folds, FoldEquivalence,
                         ::testing::Values(FoldCase{8, 1, 1},
                                           FoldCase{4, 2, 1},
                                           FoldCase{2, 2, 2},
                                           FoldCase{1, 4, 2}));

//===----------------------------------------------------------------------===//
// Property sweep: temporal wavefront == plain time stepping.
//===----------------------------------------------------------------------===//

struct WavefrontCase {
  int Depth;
  int Radius;
  long Bz;
  int Steps;
};

class WavefrontEquivalence : public ::testing::TestWithParam<WavefrontCase> {
};

TEST_P(WavefrontEquivalence, MatchesPlainTimeStepping) {
  WavefrontCase P = GetParam();
  StencilSpec S = StencilSpec::star3d(P.Radius);
  GridDims Dims{12, 10, 16};

  Grid UPlain = randomGrid(Dims, P.Radius);
  Grid UWave(Dims, P.Radius);
  UWave.copyInteriorFrom(UPlain);
  Grid S1(Dims, P.Radius), S2(Dims, P.Radius);

  KernelConfig Plain;
  KernelExecutor ExecPlain(S, Plain);
  ExecPlain.runTimeSteps(UPlain, S1, P.Steps);

  KernelConfig Wave;
  Wave.WavefrontDepth = P.Depth;
  Wave.Block.Z = P.Bz;
  KernelExecutor ExecWave(S, Wave);
  ExecWave.runTimeSteps(UWave, S2, P.Steps);

  EXPECT_EQ(Grid::maxAbsDiffInterior(UPlain, UWave), 0.0)
      << "depth=" << P.Depth << " r=" << P.Radius << " bz=" << P.Bz
      << " steps=" << P.Steps;
}

INSTANTIATE_TEST_SUITE_P(
    Waves, WavefrontEquivalence,
    ::testing::Values(WavefrontCase{2, 1, 4, 2}, WavefrontCase{2, 1, 4, 5},
                      WavefrontCase{3, 1, 4, 9}, WavefrontCase{4, 1, 2, 8},
                      WavefrontCase{2, 2, 5, 4}, WavefrontCase{3, 2, 8, 6},
                      WavefrontCase{8, 1, 3, 16},
                      WavefrontCase{2, 1, 16, 4}));

TEST(KernelExecutor, WavefrontWithThreads) {
  ThreadPool Pool(3);
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{12, 12, 12};
  Grid UPlain = randomGrid(Dims, 1);
  Grid UWave(Dims, 1);
  UWave.copyInteriorFrom(UPlain);
  Grid S1(Dims, 1), S2(Dims, 1);

  KernelExecutor ExecPlain(S, KernelConfig());
  ExecPlain.runTimeSteps(UPlain, S1, 4);

  KernelConfig Wave;
  Wave.WavefrontDepth = 2;
  Wave.Block.Z = 4;
  Wave.Block.Y = 5;
  Wave.Threads = 3;
  KernelExecutor ExecWave(S, Wave);
  ExecWave.runTimeSteps(UWave, S2, 4, &Pool);

  EXPECT_EQ(Grid::maxAbsDiffInterior(UPlain, UWave), 0.0);
}

//===----------------------------------------------------------------------===//
// Property sweep: diamond / deep-temporal schedules == plain stepping.
//===----------------------------------------------------------------------===//

struct ScheduleCase {
  Schedule Sched;
  int Depth;
  int Radius;
  long Bz;
  int Steps;
};

class ScheduleEquivalence : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(ScheduleEquivalence, MatchesPlainTimeStepping) {
  ScheduleCase P = GetParam();
  StencilSpec S = StencilSpec::star3d(P.Radius);
  GridDims Dims{12, 10, 16};

  Grid UPlain = randomGrid(Dims, P.Radius);
  Grid USched(Dims, P.Radius);
  USched.copyInteriorFrom(UPlain);
  Grid S1(Dims, P.Radius), S2(Dims, P.Radius);

  KernelExecutor ExecPlain(S, KernelConfig());
  ExecPlain.runTimeSteps(UPlain, S1, P.Steps);

  KernelConfig C;
  C.Sched = P.Sched;
  C.WavefrontDepth = P.Depth;
  C.Block.Z = P.Bz;
  KernelExecutor ExecSched(S, C);
  ExecSched.runTimeSteps(USched, S2, P.Steps);

  EXPECT_EQ(Grid::maxAbsDiffInterior(UPlain, USched), 0.0)
      << "sched=" << scheduleName(P.Sched) << " depth=" << P.Depth
      << " r=" << P.Radius << " bz=" << P.Bz << " steps=" << P.Steps;
}

INSTANTIATE_TEST_SUITE_P(
    Diamonds, ScheduleEquivalence,
    ::testing::Values(
        // Multi-tile (Nz=16 > W), single-tile degenerate (W >= Nz),
        // odd depth (buffer swap), wide radius, non-multiple steps.
        ScheduleCase{Schedule::Diamond, 2, 1, 4, 4},
        ScheduleCase{Schedule::Diamond, 2, 1, 4, 5},
        ScheduleCase{Schedule::Diamond, 3, 1, 2, 9},
        ScheduleCase{Schedule::Diamond, 2, 2, 8, 4},
        ScheduleCase{Schedule::Diamond, 4, 1, 0, 8},
        ScheduleCase{Schedule::Diamond, 8, 1, 2, 16},
        ScheduleCase{Schedule::Diamond, 2, 1, 32, 6}));

INSTANTIATE_TEST_SUITE_P(
    DeepTemporal, ScheduleEquivalence,
    ::testing::Values(
        // Depths beyond the z extent's skew, odd depths, wide radius,
        // leftover plain steps (steps not a depth multiple).
        ScheduleCase{Schedule::DeepTemporal, 2, 1, 0, 4},
        ScheduleCase{Schedule::DeepTemporal, 3, 1, 4, 9},
        ScheduleCase{Schedule::DeepTemporal, 4, 2, 0, 8},
        ScheduleCase{Schedule::DeepTemporal, 8, 1, 0, 16},
        ScheduleCase{Schedule::DeepTemporal, 16, 1, 0, 16},
        ScheduleCase{Schedule::DeepTemporal, 4, 1, 0, 6}));

TEST(KernelExecutor, DiamondWithThreads) {
  ThreadPool Pool(3);
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{12, 12, 12};
  Grid UPlain = randomGrid(Dims, 1);
  Grid USched(Dims, 1);
  USched.copyInteriorFrom(UPlain);
  Grid S1(Dims, 1), S2(Dims, 1);

  KernelExecutor ExecPlain(S, KernelConfig());
  ExecPlain.runTimeSteps(UPlain, S1, 4);

  KernelConfig C;
  C.Sched = Schedule::Diamond;
  C.WavefrontDepth = 2;
  C.Block.Z = 4;
  C.Block.Y = 5;
  C.Threads = 3;
  KernelExecutor ExecSched(S, C);
  ExecSched.runTimeSteps(USched, S2, 4, &Pool);

  EXPECT_EQ(Grid::maxAbsDiffInterior(UPlain, USched), 0.0);
}

TEST(KernelExecutor, DeepTemporalWithThreads) {
  ThreadPool Pool(4);
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{12, 12, 12};
  Grid UPlain = randomGrid(Dims, 1);
  Grid USched(Dims, 1);
  USched.copyInteriorFrom(UPlain);
  Grid S1(Dims, 1), S2(Dims, 1);

  KernelExecutor ExecPlain(S, KernelConfig());
  ExecPlain.runTimeSteps(UPlain, S1, 6);

  KernelConfig C;
  C.Sched = Schedule::DeepTemporal;
  C.WavefrontDepth = 3;
  C.Block.Y = 4;
  C.Threads = 4;
  KernelExecutor ExecSched(S, C);
  ExecSched.runTimeSteps(USched, S2, 6, &Pool);

  EXPECT_EQ(Grid::maxAbsDiffInterior(UPlain, USched), 0.0);
}

TEST(KernelExecutor, ScheduleNonzeroBoundary) {
  // Constant-in-time Dirichlet boundary must be honored by both new
  // schedules (both buffers carry the halo).
  for (Schedule Sched : {Schedule::Diamond, Schedule::DeepTemporal}) {
    StencilSpec S = StencilSpec::star3d(1, 0.25, 0.125);
    GridDims Dims{8, 8, 12};
    Grid UPlain(Dims, 1);
    Rng R(9);
    UPlain.fillRandom(R);
    UPlain.fillHalo(1.5);
    Grid USched(Dims, 1);
    USched.copyInteriorFrom(UPlain);
    USched.fillHalo(1.5);
    Grid S1(Dims, 1), S2(Dims, 1);
    S1.fillHalo(1.5);
    S2.fillHalo(1.5);

    KernelExecutor ExecPlain(S, KernelConfig());
    ExecPlain.runTimeSteps(UPlain, S1, 4);

    KernelConfig C;
    C.Sched = Sched;
    C.WavefrontDepth = 2;
    C.Block.Z = 4;
    KernelExecutor ExecSched(S, C);
    ExecSched.runTimeSteps(USched, S2, 4);

    EXPECT_EQ(Grid::maxAbsDiffInterior(UPlain, USched), 0.0)
        << scheduleName(Sched);
  }
}

TEST(KernelExecutor, InvalidDepthRejectedByValidation) {
  // The executor no longer clamps an invalid wavefront depth; every entry
  // point must reject it via KernelConfig::validate() before construction.
  for (int Depth : {0, -1, -7}) {
    KernelConfig C;
    C.WavefrontDepth = Depth;
    EXPECT_FALSE(C.validate().empty()) << "wf=" << Depth;
  }
  KernelConfig SweepFused;
  SweepFused.Sched = Schedule::Sweep;
  SweepFused.WavefrontDepth = 2;
  EXPECT_FALSE(SweepFused.validate().empty());
  KernelConfig SweepPlain;
  SweepPlain.Sched = Schedule::Sweep;
  EXPECT_TRUE(SweepPlain.validate().empty());
}

TEST(KernelExecutor, WavefrontNonzeroBoundary) {
  // Constant-in-time Dirichlet boundary must be honored by the wavefront
  // path (both buffers carry the halo).
  StencilSpec S = StencilSpec::star3d(1, 0.25, 0.125);
  GridDims Dims{8, 8, 12};
  Grid UPlain(Dims, 1);
  Rng R(9);
  UPlain.fillRandom(R);
  UPlain.fillHalo(1.5);
  Grid UWave(Dims, 1);
  UWave.copyInteriorFrom(UPlain);
  UWave.fillHalo(1.5);
  Grid S1(Dims, 1), S2(Dims, 1);
  S1.fillHalo(1.5);
  S2.fillHalo(1.5);

  KernelExecutor ExecPlain(S, KernelConfig());
  ExecPlain.runTimeSteps(UPlain, S1, 4);

  KernelConfig Wave;
  Wave.WavefrontDepth = 2;
  Wave.Block.Z = 4;
  KernelExecutor ExecWave(S, Wave);
  ExecWave.runTimeSteps(UWave, S2, 4);

  EXPECT_EQ(Grid::maxAbsDiffInterior(UPlain, UWave), 0.0);
}
