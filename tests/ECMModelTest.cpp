//===- tests/ECMModelTest.cpp - ECM model unit tests ------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ecm/ECMModel.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

const GridDims BigDims{512, 512, 256}; // Far beyond every cache.

KernelConfig avx512Config() {
  KernelConfig C;
  C.VectorFold.X = 8; // Full AVX-512 vectorization.
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// InCoreModel
//===----------------------------------------------------------------------===//

TEST(InCoreModel, Heat3dOnCascadeLake) {
  MachineModel M = MachineModel::cascadeLakeSP();
  InCoreModel IC(M);
  InCoreTime T = IC.analyze(StencilSpec::heat3d(), avx512Config());
  // 8 LUPs per CL at 8 doubles/vector = 1 vector iteration.
  EXPECT_DOUBLE_EQ(T.VectorIters, 1.0);
  // 7 muls, 6 adds -> 6 FMA + 1 mul = 7 ops on 2 ports = 3.5 cy.
  EXPECT_DOUBLE_EQ(T.TOL, 3.5);
  // 7 vector loads on 2 ports = 3.5 cy > 1 store on 1 port.
  EXPECT_DOUBLE_EQ(T.TnOL, 3.5);
}

TEST(InCoreModel, ScalarLayoutIsSlower) {
  MachineModel M = MachineModel::cascadeLakeSP();
  InCoreModel IC(M);
  InCoreTime Vec = IC.analyze(StencilSpec::heat3d(), avx512Config());
  InCoreTime Scal = IC.analyze(StencilSpec::heat3d(), KernelConfig());
  EXPECT_GT(Scal.TOL, Vec.TOL * 7.9); // 8x more iterations.
  EXPECT_GT(Scal.TnOL, Vec.TnOL * 7.9);
}

TEST(InCoreModel, RomeHalfVectorWidth) {
  MachineModel M = MachineModel::rome();
  InCoreModel IC(M);
  KernelConfig C;
  C.VectorFold.X = 4;
  InCoreTime T = IC.analyze(StencilSpec::heat3d(), C);
  EXPECT_DOUBLE_EQ(T.VectorIters, 2.0); // 8 LUPs / 4-wide vectors.
}

TEST(InCoreModel, FoldCannotExceedRegisterWidth) {
  MachineModel M = MachineModel::rome(); // 4 doubles per register.
  InCoreModel IC(M);
  KernelConfig C;
  C.VectorFold.X = 8; // Wider than the machine: clamped to 4.
  InCoreTime T = IC.analyze(StencilSpec::heat3d(), C);
  EXPECT_DOUBLE_EQ(T.VectorIters, 2.0);
}

TEST(InCoreModel, ExtraFlopsRaiseTOL) {
  MachineModel M = MachineModel::cascadeLakeSP();
  InCoreModel IC(M);
  StencilSpec S = StencilSpec::heat3d();
  InCoreTime Base = IC.analyze(S, avx512Config());
  S.ExtraFlopsPerLup = 10;
  InCoreTime More = IC.analyze(S, avx512Config());
  EXPECT_GT(More.TOL, Base.TOL);
  EXPECT_DOUBLE_EQ(More.TnOL, Base.TnOL);
}

//===----------------------------------------------------------------------===//
// LayerConditionAnalysis
//===----------------------------------------------------------------------===//

TEST(LayerCondition, Heat3dBigGridOnCascadeLake) {
  MachineModel M = MachineModel::cascadeLakeSP();
  LayerConditionAnalysis LC(M);
  TrafficPrediction T =
      LC.analyze(StencilSpec::heat3d(), BigDims, KernelConfig());
  ASSERT_EQ(T.BytesPerLup.size(), 3u);
  // 512x512 planes: 3 planes x 2 MiB >> L1/L2 -> row reuse at best there;
  // L3 (27.5 MiB effective 13.7) holds the 6+2 MiB plane set -> plane
  // reuse at L3: memory traffic 8 (load) + 16 (store+WA) = 24 B/LUP.
  EXPECT_EQ(T.LevelReuse[2], ReuseClass::Plane);
  EXPECT_DOUBLE_EQ(T.BytesPerLup[2], 24.0);
  // Rows (5 x 4 KiB = 20 KiB) exceed half of L1 (16 KiB eff.) -> None.
  EXPECT_EQ(T.LevelReuse[0], ReuseClass::None);
  // L2 1 MiB holds the rows -> Row reuse: 3 streams + 16.
  EXPECT_EQ(T.LevelReuse[1], ReuseClass::Row);
  EXPECT_DOUBLE_EQ(T.BytesPerLup[1], 3 * 8.0 + 16.0);
}

TEST(LayerCondition, StreamingStoresCutWriteAllocate) {
  MachineModel M = MachineModel::cascadeLakeSP();
  LayerConditionAnalysis LC(M);
  KernelConfig NT;
  NT.StreamingStores = true;
  TrafficPrediction A =
      LC.analyze(StencilSpec::heat3d(), BigDims, KernelConfig());
  TrafficPrediction B = LC.analyze(StencilSpec::heat3d(), BigDims, NT);
  EXPECT_DOUBLE_EQ(A.BytesPerLup[2] - B.BytesPerLup[2], 8.0);
}

TEST(LayerCondition, BlockingRestoresPlaneReuse) {
  MachineModel M = MachineModel::cascadeLakeSP();
  LayerConditionAnalysis LC(M);
  StencilSpec S = StencilSpec::star3d(4);
  KernelConfig Blocked;
  Blocked.Block.Y = 8;
  TrafficPrediction U = LC.analyze(S, BigDims, KernelConfig());
  TrafficPrediction B = LC.analyze(S, BigDims, Blocked);
  // Unblocked: planes (10 x 2 MiB) overflow even L3.
  EXPECT_NE(U.LevelReuse[2], ReuseClass::Plane);
  // Blocked: plane footprint 10 x 512 x 8 x 8 = 320 KiB fits L2 (512 KiB
  // effective).
  EXPECT_EQ(B.LevelReuse[1], ReuseClass::Plane);
  EXPECT_LT(B.BytesPerLup[2], U.BytesPerLup[2]);
}

TEST(LayerCondition, HaloFactorAppliesInTightPlaneLevels) {
  // Halo reload is charged only at plane-reuse levels too small to retain
  // two adjacent block windows.  star3d r2 with By=12: plane footprint
  // 6 x 512 x 12 x 8 = 288 KiB; L2 effective 512 KiB holds one window but
  // not two -> halo factor (12+4)/12 applies at L2.
  MachineModel M = MachineModel::cascadeLakeSP();
  LayerConditionAnalysis LC(M);
  StencilSpec S = StencilSpec::star3d(2);
  KernelConfig C;
  C.Block.Y = 12;
  TrafficPrediction T = LC.analyze(S, BigDims, C);
  ASSERT_EQ(T.LevelReuse[1], ReuseClass::Plane);
  EXPECT_NEAR(T.BytesPerLup[1], 8.0 * (16.0 / 12.0) + 16.0, 1e-9);
  // L3 holds many windows: the halo is retained, memory sees each element
  // once.
  EXPECT_NEAR(T.BytesPerLup[2], 24.0, 1e-9);
}

TEST(LayerCondition, HaloAbsorbedWhenLevelHoldsTwoWindows) {
  MachineModel M = MachineModel::cascadeLakeSP();
  LayerConditionAnalysis LC(M);
  StencilSpec S = StencilSpec::star3d(2);
  KernelConfig C;
  C.Block.Y = 8; // Footprint 192 KiB; L2 holds two windows.
  TrafficPrediction T = LC.analyze(S, BigDims, C);
  ASSERT_EQ(T.LevelReuse[1], ReuseClass::Plane);
  EXPECT_NEAR(T.BytesPerLup[1], 24.0, 1e-9);
}

TEST(LayerCondition, SharedCacheShrinksWithActiveCores) {
  MachineModel M = MachineModel::cascadeLakeSP();
  LayerConditionAnalysis LC(M);
  unsigned long long Full = LC.effectiveCapacity(2, 1);
  unsigned long long Shared = LC.effectiveCapacity(2, 20);
  EXPECT_EQ(Full, Shared * 20);
  // Private caches unaffected.
  EXPECT_EQ(LC.effectiveCapacity(0, 1), LC.effectiveCapacity(0, 20));
}

TEST(LayerCondition, TrafficMonotoneOutward) {
  MachineModel M = MachineModel::rome();
  LayerConditionAnalysis LC(M);
  for (int R : {1, 2, 4}) {
    TrafficPrediction T =
        LC.analyze(StencilSpec::star3d(R), BigDims, KernelConfig());
    for (size_t I = 1; I < T.BytesPerLup.size(); ++I)
      EXPECT_LE(T.BytesPerLup[I], T.BytesPerLup[I - 1]);
  }
}

TEST(LayerCondition, MaxPlaneBlockYMatchesAnalyze) {
  MachineModel M = MachineModel::cascadeLakeSP();
  LayerConditionAnalysis LC(M);
  StencilSpec S = StencilSpec::star3d(4);
  long By = LC.maxPlaneBlockY(S, BigDims, /*Level=*/1);
  ASSERT_GT(By, 0);
  ASSERT_LT(By, BigDims.Ny);
  KernelConfig C;
  C.Block.Y = By;
  TrafficPrediction T = LC.analyze(S, BigDims, C);
  EXPECT_EQ(T.LevelReuse[1], ReuseClass::Plane);
  // One grid row more must break the condition.
  C.Block.Y = By + 1;
  TrafficPrediction T2 = LC.analyze(S, BigDims, C);
  EXPECT_NE(T2.LevelReuse[1], ReuseClass::Plane);
}

//===----------------------------------------------------------------------===//
// ECMModel composition
//===----------------------------------------------------------------------===//

TEST(ECMModel, CompositionIsMaxOfOverlapAndTransfers) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  ECMPrediction P =
      Model.predict(StencilSpec::heat3d(), BigDims, avx512Config());
  double Sum = P.InCore.TnOL;
  for (double T : P.TData)
    Sum += T;
  EXPECT_DOUBLE_EQ(P.TECM, std::max(P.InCore.TOL, Sum));
  EXPECT_GT(P.TECM, 0.0);
  EXPECT_DOUBLE_EQ(P.CyclesPerLup, P.TECM / 8.0);
}

TEST(ECMModel, MemoryBoundStencilSaturatesBelowSocket) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  ECMPrediction P =
      Model.predict(StencilSpec::heat3d(), BigDims, avx512Config());
  // A streaming stencil saturates memory bandwidth with a handful of
  // cores on CLX (paper-typical: 5-12).
  EXPECT_GE(P.SaturationCores, 2u);
  EXPECT_LE(P.SaturationCores, 14u);
  EXPECT_LT(P.MLupsSaturated, P.MLupsSingleCore * M.CoresPerSocket);
}

TEST(ECMModel, ScalingCapsAtSaturation) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  ECMPrediction P =
      Model.predict(StencilSpec::heat3d(), BigDims, avx512Config());
  EXPECT_DOUBLE_EQ(P.mlupsAtCores(1), P.MLupsSingleCore);
  EXPECT_DOUBLE_EQ(P.mlupsAtCores(2), 2 * P.MLupsSingleCore);
  EXPECT_DOUBLE_EQ(P.mlupsAtCores(M.CoresPerSocket), P.MLupsSaturated);
}

TEST(ECMModel, MoreBandwidthIsFaster) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Slow(M);
  MachineModel M2 = M;
  M2.Memory.BandwidthGBs *= 2;
  ECMModel Fast(M2);
  ECMPrediction PS =
      Slow.predict(StencilSpec::heat3d(), BigDims, avx512Config());
  ECMPrediction PF =
      Fast.predict(StencilSpec::heat3d(), BigDims, avx512Config());
  EXPECT_GT(PF.MLupsSaturated, PS.MLupsSaturated * 1.9);
  EXPECT_GE(PF.MLupsSingleCore, PS.MLupsSingleCore);
}

TEST(ECMModel, HeavierStencilIsSlowerPerCore) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  ECMPrediction R1 =
      Model.predict(StencilSpec::star3d(1), BigDims, avx512Config());
  ECMPrediction R4 =
      Model.predict(StencilSpec::star3d(4), BigDims, avx512Config());
  EXPECT_LT(R4.MLupsSingleCore, R1.MLupsSingleCore);
}

TEST(ECMModel, WavefrontReducesMemoryTerm) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  KernelConfig Plain = avx512Config();
  KernelConfig Wave = avx512Config();
  Wave.WavefrontDepth = 4;
  Wave.Block.Z = 8;
  // Window: 2 buffers x 4 x (8+1) planes x 128 KiB = 9.2 MiB, inside the
  // 13.75 MiB effective L3.
  GridDims Dims{128, 128, 256};
  ECMPrediction PP = Model.predict(StencilSpec::heat3d(), Dims, Plain);
  ECMPrediction PW = Model.predict(StencilSpec::heat3d(), Dims, Wave);
  EXPECT_LT(PW.Traffic.BytesPerLup.back(),
            PP.Traffic.BytesPerLup.back() * 0.5);
  EXPECT_GT(PW.MLupsSaturated, PP.MLupsSaturated * 1.5);
}

TEST(ECMModel, WavefrontNoopWhenWindowSpills) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  KernelConfig Wave = avx512Config();
  Wave.WavefrontDepth = 8;
  Wave.Block.Z = 64; // Window: 8 x (64+1) planes x 2 MiB >> L3.
  GridDims Dims{512, 512, 512};
  KernelConfig Plain = Wave; // Same spatial blocking, no temporal depth.
  Plain.WavefrontDepth = 1;
  ECMPrediction PP = Model.predict(StencilSpec::heat3d(), Dims, Plain);
  ECMPrediction PW = Model.predict(StencilSpec::heat3d(), Dims, Wave);
  EXPECT_DOUBLE_EQ(PW.Traffic.BytesPerLup.back(),
                   PP.Traffic.BytesPerLup.back());
}

TEST(ECMModel, SpillsAtExactCapacityBoundary) {
  // The window is never the cache's only tenant: WorkingSet == SizeBytes
  // must already spill (>=, not >), and one byte of slack must fit.
  MachineModel M = MachineModel::cascadeLakeSP();
  KernelConfig Wave = avx512Config();
  Wave.WavefrontDepth = 4;
  Wave.Block.Z = 8;
  GridDims Dims{128, 128, 256};
  StencilSpec S = StencilSpec::heat3d();

  // Wavefront window: Depth*R + 2*Bz = 4 + 16 planes, two buffers.
  unsigned long long WindowPlanes = 4ull * 1 + 2ull * 8;
  unsigned long long WorkingSet =
      2ull * WindowPlanes * Dims.Nx * Dims.Ny * 8;

  MachineModel Exact = M;
  Exact.Caches.back().SizeBytes = WorkingSet;
  ECMModel ExactModel(Exact);
  KernelConfig Plain = Wave;
  Plain.WavefrontDepth = 1;
  ECMPrediction PP = ExactModel.predict(S, Dims, Plain);
  ECMPrediction PW = ExactModel.predict(S, Dims, Wave);
  EXPECT_DOUBLE_EQ(PW.Traffic.BytesPerLup.back(),
                   PP.Traffic.BytesPerLup.back())
      << "exactly-full window must count as spilled";

  MachineModel Fits = M;
  Fits.Caches.back().SizeBytes = WorkingSet + 1;
  ECMModel FitsModel(Fits);
  ECMPrediction PFPlain = FitsModel.predict(S, Dims, Plain);
  ECMPrediction PF = FitsModel.predict(S, Dims, Wave);
  EXPECT_LT(PF.Traffic.BytesPerLup.back(),
            PFPlain.Traffic.BytesPerLup.back())
      << "one byte of slack must enable the temporal rescale";
}

TEST(ECMModel, DiamondReducesMemoryTermWithReloadFactor) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  KernelConfig Plain = avx512Config();
  KernelConfig Diamond = avx512Config();
  Diamond.Sched = Schedule::Diamond;
  Diamond.WavefrontDepth = 4;
  Diamond.Block.Z = 32; // Tile width 32 >= 2*4*1.
  GridDims Dims{128, 128, 256};
  StencilSpec S = StencilSpec::heat3d();
  ECMPrediction PP = Model.predict(S, Dims, Plain);
  ECMPrediction PD = Model.predict(S, Dims, Diamond);
  // Clear win over plain sweeps...
  EXPECT_LT(PD.Traffic.BytesPerLup.back(),
            PP.Traffic.BytesPerLup.back() * 0.75);
  // ...but the boundary diamonds reload ~2*Depth*R planes per tile, so
  // diamond traffic carries a (W + 2*R*Depth)/W factor over the pure
  // 32/Depth streaming floor that a fitting wavefront reaches (Bz=8
  // keeps the wavefront window inside L3 on these dims).
  KernelConfig Wave = avx512Config();
  Wave.Sched = Schedule::Wavefront;
  Wave.WavefrontDepth = 4;
  Wave.Block.Z = 8;
  ECMPrediction PW = Model.predict(S, Dims, Wave);
  EXPECT_GT(PD.Traffic.BytesPerLup.back(),
            PW.Traffic.BytesPerLup.back());
}

TEST(ECMModel, DeepTemporalSustainsDepthsThatSpillTheWavefront) {
  // At depth 16 with a 64-plane z block the wavefront window (144 planes,
  // 36 MiB) spills L3, but the deep-temporal pipeline window (~20 planes,
  // 5 MiB) still fits — the signature that justifies the schedule.
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  GridDims Dims{128, 128, 512};
  StencilSpec S = StencilSpec::heat3d();
  KernelConfig Plain = avx512Config();

  KernelConfig Wave = avx512Config();
  Wave.WavefrontDepth = 16;
  Wave.Block.Z = 64;
  KernelConfig Deep = avx512Config();
  Deep.Sched = Schedule::DeepTemporal;
  Deep.WavefrontDepth = 16;

  ECMPrediction PP = Model.predict(S, Dims, Plain);
  ECMPrediction PW = Model.predict(S, Dims, Wave);
  ECMPrediction PD = Model.predict(S, Dims, Deep);
  EXPECT_DOUBLE_EQ(PW.Traffic.BytesPerLup.back(),
                   PP.Traffic.BytesPerLup.back())
      << "wavefront window must spill at this depth";
  EXPECT_LT(PD.Traffic.BytesPerLup.back(),
            PP.Traffic.BytesPerLup.back() * 0.2)
      << "deep-temporal must keep the 32/Depth streaming floor";
}

TEST(ECMModel, PredictedSecondsScalesWithWork) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  ECMPrediction P =
      Model.predict(StencilSpec::heat3d(), BigDims, avx512Config());
  double OneSweep = Model.predictedSeconds(P, BigDims, 1, 1);
  double TenSweeps = Model.predictedSeconds(P, BigDims, 10, 1);
  EXPECT_NEAR(TenSweeps, 10 * OneSweep, 1e-12);
  double AtSat = Model.predictedSeconds(P, BigDims, 1, P.SaturationCores);
  EXPECT_LT(AtSat, OneSweep);
}

TEST(ECMModel, NotationStringContainsTerms) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  ECMPrediction P =
      Model.predict(StencilSpec::heat3d(), BigDims, avx512Config());
  std::string S = P.str();
  EXPECT_NE(S.find("||"), std::string::npos);
  EXPECT_NE(S.find("cy/CL"), std::string::npos);
  EXPECT_NE(S.find("MLUP/s"), std::string::npos);
}

TEST(InCoreModel, PseudoAsmStructure) {
  MachineModel M = MachineModel::cascadeLakeSP();
  InCoreModel IC(M);
  std::string Asm = IC.emitPseudoAsm(StencilSpec::heat3d(), avx512Config());
  // heat3d with a 1-D fold: 7 loads, 6 FMAs + 1 mul-ish arith, 1 store.
  size_t Loads = 0, Fmas = 0, Stores = 0;
  size_t Pos = 0;
  while ((Pos = Asm.find("vload", Pos)) != std::string::npos) {
    ++Loads;
    Pos += 5;
  }
  Pos = 0;
  while ((Pos = Asm.find("vfmadd", Pos)) != std::string::npos) {
    ++Fmas;
    Pos += 6;
  }
  Pos = 0;
  while ((Pos = Asm.find("vstore", Pos)) != std::string::npos) {
    ++Stores;
    Pos += 6;
  }
  EXPECT_EQ(Loads, 7u);
  EXPECT_EQ(Fmas, 6u);
  EXPECT_EQ(Stores, 1u);
  EXPECT_NE(Asm.find("T_OL = 3.5"), std::string::npos);
  EXPECT_NE(Asm.find("T_nOL = 3.5"), std::string::npos);
}

TEST(InCoreModel, PseudoAsmStreamingStore) {
  MachineModel M = MachineModel::rome();
  InCoreModel IC(M);
  KernelConfig C;
  C.VectorFold.X = 4;
  C.StreamingStores = true;
  std::string Asm = IC.emitPseudoAsm(StencilSpec::heat3d(), C);
  EXPECT_NE(Asm.find("vmovnt"), std::string::npos);
  EXPECT_NE(Asm.find("Rome"), std::string::npos);
}
