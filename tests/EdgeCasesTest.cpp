//===- tests/EdgeCasesTest.cpp - edge-case coverage ---------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cachesim/StencilTrace.h"
#include "codegen/KernelExecutor.h"
#include "codegen/SourceEmitter.h"
#include "ode/Adaptive.h"
#include "ode/IVP.h"
#include "offsite/Database.h"
#include "solution/StencilSolution.h"
#include "support/ThreadPool.h"
#include "verify/GridPatterns.h"

#include <gtest/gtest.h>

using namespace ys;

TEST(EdgeCases, ThreadPoolReversedAndSingletonRanges) {
  ThreadPool Pool(4);
  int Count = 0;
  Pool.parallelFor(10, 5, [&](long) { ++Count; }); // Empty (end < begin).
  EXPECT_EQ(Count, 0);
  Pool.parallelFor(7, 8, [&](long I) {
    EXPECT_EQ(I, 7);
    ++Count;
  });
  EXPECT_EQ(Count, 1);
}

TEST(EdgeCases, GridSinglePlaneAndColumn) {
  // Degenerate extents must address correctly.
  Grid Plane({16, 16, 1}, 1);
  Plane.at(15, 15, 0) = 1.0;
  EXPECT_EQ(Plane.at(15, 15, 0), 1.0);
  Grid Column({64, 1, 1}, 2);
  Column.at(63, 0, 0) = 2.0;
  EXPECT_EQ(Column.at(63, 0, 0), 2.0);
  EXPECT_EQ(Column.at(-2, 0, 0), 0.0);
}

TEST(EdgeCases, ExecutorOnDegenerateGrids) {
  // 1-D chain stencil on an Nx1x1 grid.
  StencilSpec S = StencilSpec::line1d(2);
  GridDims Dims{32, 1, 1};
  Grid In(Dims, 2), OutRef(Dims, 2), OutCfg(Dims, 2);
  const uint64_t Seed = 3;
  fillPattern(In, GridPattern::Random, Seed);
  KernelExecutor::runReference(S, {&In}, OutRef);
  KernelConfig C;
  C.Block.X = 5;
  KernelExecutor Exec(S, C);
  Exec.runSweep({&In}, OutCfg);
  EXPECT_EQ(Grid::maxAbsDiffInterior(OutRef, OutCfg), 0.0)
      << "pattern=random seed=" << Seed;
}

TEST(EdgeCases, WavefrontDepthLargerThanSteps) {
  // runTimeSteps with Steps < depth must fall back to plain sweeps.
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{8, 8, 8};
  Grid A(Dims, 1), B(Dims, 1);
  const uint64_t Seed = 4;
  fillPattern(A, GridPattern::Random, Seed);
  B.copyInteriorFrom(A);
  Grid S1(Dims, 1), S2(Dims, 1);
  KernelExecutor Plain(S, KernelConfig());
  Plain.runTimeSteps(A, S1, 3);
  KernelConfig Wf;
  Wf.WavefrontDepth = 8;
  Wf.Block.Z = 2;
  KernelExecutor Wave(S, Wf);
  Wave.runTimeSteps(B, S2, 3);
  EXPECT_EQ(Grid::maxAbsDiffInterior(A, B), 0.0)
      << "pattern=random seed=" << Seed;
}

TEST(EdgeCases, AdaptiveZeroLengthInterval) {
  Heat2DIVP P(8);
  Grid Y(P.dims(), P.halo());
  P.initialCondition(Y);
  ExplicitRKIntegrator Integ(ButcherTableau::fehlberg45(),
                             RKVariant::StageSeparate);
  RKWorkspace WS;
  AdaptiveOptions Opts;
  AdaptiveResult R =
      integrateAdaptive(Integ, P, 1.0, 1.0, 0.1, Y, WS, Opts);
  EXPECT_TRUE(R.Converged);
  EXPECT_EQ(R.AcceptedSteps, 0u);
}

TEST(EdgeCases, DatabaseNearestWithSingleRecordAndTies) {
  TuningDatabase Db;
  TuningRecord R;
  R.Machine = "M";
  R.Method = "rk4";
  R.Problem = "heat3d";
  R.Dims = {64, 64, 64};
  R.Cores = 1;
  R.VariantName = "only";
  Db.insert(R);
  const TuningRecord *Hit =
      Db.lookupNearest("M", "rk4", "heat3d", {8, 8, 8}, 1);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->VariantName, "only");
}

TEST(EdgeCases, EmitterSingleNegativeCoefficient) {
  StencilSpec S("neg", {{0, 0, 0, -1.0, 0}});
  std::string E = SourceEmitter::emitExpression(S);
  EXPECT_NE(E.find("-1"), std::string::npos);
  std::string Dsl = SourceEmitter::emitDsl(S);
  EXPECT_NE(Dsl.find("= -u0[x,y,z];"), std::string::npos);
}

TEST(EdgeCases, SolutionSingleEquationPlanDescription) {
  auto SolOr = StencilSolution::fromDslSource(
      "stencil s { grid u, v; v[x,y,z] = u[x+1,y,z]; }", {8, 8, 8});
  ASSERT_TRUE(static_cast<bool>(SolOr));
  std::string Desc = SolOr->describePlan();
  EXPECT_NE(Desc.find("sweep 0: v"), std::string::npos);
  EXPECT_EQ(Desc.find("fused"), std::string::npos);
}

TEST(EdgeCases, TraceRunnerCustomHalo) {
  // Halo wider than the radius shifts addresses but not per-LUP traffic
  // materially.
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{32, 32, 16};
  CacheHierarchySim SimA({{"L1", 8 * 1024, 8, 64}});
  CacheHierarchySim SimB({{"L1", 8 * 1024, 8, 64}});
  double A = StencilTraceRunner(S, Dims, {}, 1).run(SimA, 2)
                 .BytesPerLup.back();
  double B = StencilTraceRunner(S, Dims, {}, 4).run(SimB, 2)
                 .BytesPerLup.back();
  EXPECT_NEAR(A, B, 0.25 * A);
}

TEST(EdgeCases, StencilSpecSinglePoint) {
  StencilSpec S("copy", {{0, 0, 0, 1.0, 0}});
  EXPECT_EQ(S.radius(), 0);
  EXPECT_EQ(S.flopsPerLup(), 0u); // Unit coeff, no adds.
  EXPECT_EQ(S.shape(), StencilShape::Star);
  EXPECT_TRUE(S.is1D());
  GridDims Dims{8, 8, 8};
  Grid In(Dims, 0), Out(Dims, 0);
  const uint64_t Seed = 1;
  fillPattern(In, GridPattern::Random, Seed);
  KernelExecutor Exec(S, KernelConfig());
  Exec.runSweep({&In}, Out);
  EXPECT_EQ(Grid::maxAbsDiffInterior(In, Out), 0.0)
      << "pattern=random seed=" << Seed;
}
