//===- tests/DatabaseTest.cpp - tuning database tests -------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "offsite/Database.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace ys;

namespace {

TuningRecord record(const char *Machine, const char *Method, long N,
                    const char *Variant, double Sec = 1e-3,
                    unsigned Cores = 20) {
  TuningRecord R;
  R.Machine = Machine;
  R.Method = Method;
  R.Problem = "heat3d";
  R.Dims = {N, N, N};
  R.Cores = Cores;
  R.VariantName = Variant;
  R.PredictedSecondsPerStep = Sec;
  return R;
}

} // namespace

TEST(TuningDatabase, InsertAndLookup) {
  TuningDatabase Db;
  Db.insert(record("CLX", "rk4", 128, "fused-update"));
  Db.insert(record("Rome", "rk4", 128, "fused-argument"));
  ASSERT_EQ(Db.size(), 2u);
  const TuningRecord *R =
      Db.lookup("CLX", "rk4", "heat3d", {128, 128, 128}, 20);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->VariantName, "fused-update");
  EXPECT_EQ(Db.lookup("CLX", "rk4", "heat3d", {64, 64, 64}, 20), nullptr);
  EXPECT_EQ(Db.lookup("CLX", "rkf45", "heat3d", {128, 128, 128}, 20),
            nullptr);
}

TEST(TuningDatabase, InsertReplacesSameKey) {
  TuningDatabase Db;
  Db.insert(record("CLX", "rk4", 128, "stage-separate", 2e-3));
  Db.insert(record("CLX", "rk4", 128, "fused-update", 1e-3));
  ASSERT_EQ(Db.size(), 1u);
  EXPECT_EQ(Db.records()[0].VariantName, "fused-update");
  EXPECT_DOUBLE_EQ(Db.records()[0].PredictedSecondsPerStep, 1e-3);
}

TEST(TuningDatabase, NearestLookupPicksClosestVolume) {
  TuningDatabase Db;
  Db.insert(record("CLX", "rk4", 64, "a"));
  Db.insert(record("CLX", "rk4", 256, "b"));
  const TuningRecord *R =
      Db.lookupNearest("CLX", "rk4", "heat3d", {96, 96, 96}, 20);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->VariantName, "a");
  R = Db.lookupNearest("CLX", "rk4", "heat3d", {200, 200, 200}, 20);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->VariantName, "b");
  EXPECT_EQ(Db.lookupNearest("Rome", "rk4", "heat3d", {96, 96, 96}, 20),
            nullptr);
}

TEST(TuningDatabase, SerializeRoundTrip) {
  TuningDatabase Db;
  Db.insert(record("CascadeLakeSP", "rkf45", 512, "rkf45/fused-update",
                   3.25e-2, 20));
  Db.insert(record("Rome", "heun2", 96, "heun2/stage-separate", 1e-4, 64));
  std::string Text = Db.serialize();
  auto LoadedOr = TuningDatabase::deserialize(Text);
  ASSERT_TRUE(static_cast<bool>(LoadedOr))
      << LoadedOr.takeError().message();
  ASSERT_EQ(LoadedOr->size(), 2u);
  const TuningRecord *R = LoadedOr->lookup("CascadeLakeSP", "rkf45",
                                           "heat3d", {512, 512, 512}, 20);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->VariantName, "rkf45/fused-update");
  EXPECT_NEAR(R->PredictedSecondsPerStep, 3.25e-2, 1e-12);
}

TEST(TuningDatabase, DeserializeSkipsCommentsAndBlanks) {
  auto Db = TuningDatabase::deserialize(
      "# header\n\nCLX|rk4|heat3d|8x8x8|1|v|0.5\n");
  ASSERT_TRUE(static_cast<bool>(Db));
  EXPECT_EQ(Db->size(), 1u);
}

TEST(TuningDatabase, DeserializeDiagnosesMalformedLines) {
  auto Missing = TuningDatabase::deserialize("CLX|rk4|heat3d|8x8x8|1|v\n");
  ASSERT_FALSE(static_cast<bool>(Missing));
  EXPECT_NE(Missing.takeError().message().find("7 fields"),
            std::string::npos);
  auto BadDims =
      TuningDatabase::deserialize("CLX|rk4|heat3d|8x8|1|v|0.5\n");
  EXPECT_FALSE(static_cast<bool>(BadDims));
  auto NegDims =
      TuningDatabase::deserialize("CLX|rk4|heat3d|8x-8x8|1|v|0.5\n");
  EXPECT_FALSE(static_cast<bool>(NegDims));
}

TEST(TuningDatabase, FileRoundTrip) {
  std::string Path = testing::TempDir() + "/tuning_db_test.txt";
  TuningDatabase Db;
  Db.insert(record("CLX", "rk4", 128, "fused-update"));
  ASSERT_FALSE(static_cast<bool>(Db.saveFile(Path)));
  auto LoadedOr = TuningDatabase::loadFile(Path);
  ASSERT_TRUE(static_cast<bool>(LoadedOr));
  EXPECT_EQ(LoadedOr->size(), 1u);
  std::remove(Path.c_str());
  EXPECT_FALSE(static_cast<bool>(TuningDatabase::loadFile(Path)));
}
