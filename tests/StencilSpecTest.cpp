//===- tests/StencilSpecTest.cpp - stencil spec tests ----------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stencil/StencilSpec.h"

#include <gtest/gtest.h>

using namespace ys;

TEST(StencilSpec, Star3dPointCount) {
  for (int R = 1; R <= 4; ++R) {
    StencilSpec S = StencilSpec::star3d(R);
    EXPECT_EQ(S.numPoints(), static_cast<unsigned>(6 * R + 1));
    EXPECT_EQ(S.radius(), R);
    EXPECT_EQ(S.shape(), StencilShape::Star);
    EXPECT_EQ(S.validate(), "");
  }
}

TEST(StencilSpec, Box3dPointCount) {
  for (int R = 1; R <= 2; ++R) {
    StencilSpec S = StencilSpec::box3d(R);
    unsigned N = 2 * R + 1;
    EXPECT_EQ(S.numPoints(), N * N * N);
    EXPECT_EQ(S.shape(), StencilShape::Box);
    EXPECT_EQ(S.validate(), "");
  }
}

TEST(StencilSpec, Star2dIs2D) {
  StencilSpec S = StencilSpec::star2d(2);
  EXPECT_TRUE(S.is2D());
  EXPECT_FALSE(S.is1D());
  EXPECT_EQ(S.numPoints(), 9u);
}

TEST(StencilSpec, Line1dIs1D) {
  StencilSpec S = StencilSpec::line1d(3);
  EXPECT_TRUE(S.is1D());
  EXPECT_TRUE(S.is2D());
  EXPECT_EQ(S.numPoints(), 7u);
}

TEST(StencilSpec, Heat3dStructure) {
  StencilSpec S = StencilSpec::heat3d();
  EXPECT_EQ(S.numPoints(), 7u);
  EXPECT_EQ(S.radius(), 1);
  EXPECT_EQ(S.shapeName(), std::string("star"));
}

TEST(StencilSpec, LongRangeShape) {
  StencilSpec S = StencilSpec::longRange(4);
  EXPECT_EQ(S.radius(), 4);
  EXPECT_EQ(S.shape(), StencilShape::Star);
  EXPECT_EQ(S.numPoints(), 13u); // 9 on x-axis + 4 transverse.
}

TEST(StencilSpec, FlopCounts) {
  // star3d r1: 7 points, all coeffs != 1 -> 7 muls, 6 adds.
  StencilSpec S = StencilSpec::star3d(1, -6.0, 0.5);
  EXPECT_EQ(S.mulsPerLup(), 7u);
  EXPECT_EQ(S.addsPerLup(), 6u);
  EXPECT_EQ(S.flopsPerLup(), 13u);
}

TEST(StencilSpec, UnitCoefficientsAreFreeMultiplies) {
  StencilSpec S = StencilSpec::star3d(1, -6.0, 1.0);
  EXPECT_EQ(S.mulsPerLup(), 1u); // Only the center has coeff != 1.
}

TEST(StencilSpec, ExtraFlopsCounted) {
  StencilSpec S = StencilSpec::star3d(1);
  unsigned Base = S.flopsPerLup();
  S.ExtraFlopsPerLup = 5;
  EXPECT_EQ(S.flopsPerLup(), Base + 5);
}

TEST(StencilSpec, StreamsStar3d) {
  // star3d r1: layers (dy,dz) in {(0,0),(±1,0),(0,±1)} = 5; planes = 3.
  StreamCounts C = StencilSpec::star3d(1).streams();
  EXPECT_EQ(C.Layers, 5u);
  EXPECT_EQ(C.ZPlanes, 3u);
  EXPECT_EQ(C.Grids, 1u);
}

TEST(StencilSpec, StreamsBox3d) {
  // box3d r1: layers = 9 (full 3x3 in (dy,dz)); planes = 3.
  StreamCounts C = StencilSpec::box3d(1).streams();
  EXPECT_EQ(C.Layers, 9u);
  EXPECT_EQ(C.ZPlanes, 3u);
}

TEST(StencilSpec, RowAndPlaneOffsets) {
  StencilSpec S = StencilSpec::star3d(2);
  EXPECT_EQ(S.rowOffsets(0).size(), 9u);   // (0,0), (±1..2,0), (0,±1..2).
  EXPECT_EQ(S.planeOffsets(0).size(), 5u); // dz in {-2..2}.
}

TEST(StencilSpec, ValidateRejectsDuplicates) {
  StencilSpec S("dup", {{0, 0, 0, 1.0, 0}, {0, 0, 0, 2.0, 0}});
  EXPECT_NE(S.validate(), "");
}

TEST(StencilSpec, ValidateRejectsEmpty) {
  StencilSpec S("empty", {});
  EXPECT_NE(S.validate(), "");
}

TEST(StencilSpec, ValidateRejectsGappedGridIndices) {
  StencilSpec S("gap", {{0, 0, 0, 1.0, 0}, {1, 0, 0, 1.0, 2}});
  EXPECT_NE(S.validate(), "");
}

TEST(StencilSpec, MultiGridStreams) {
  StencilSpec S("multi", {{0, 0, 0, 1.0, 0}, {0, 0, 0, 0.5, 1}});
  EXPECT_EQ(S.numInputGrids(), 2u);
  StreamCounts C = S.streams();
  EXPECT_EQ(C.Grids, 2u);
  EXPECT_EQ(C.Layers, 2u);
}

TEST(StencilSpec, ShapeOtherForAsymmetric) {
  StencilSpec S("asym", {{0, 0, 0, 1.0, 0},
                         {-1, 0, 0, 1.0, 0},
                         {-1, -1, 0, 1.0, 0}});
  EXPECT_EQ(S.shape(), StencilShape::Other);
}

//===----------------------------------------------------------------------===//
// Parameterized sweeps over radii.
//===----------------------------------------------------------------------===//

class StarRadiusTest : public ::testing::TestWithParam<int> {};

TEST_P(StarRadiusTest, StreamsScaleWithRadius) {
  int R = GetParam();
  StencilSpec S = StencilSpec::star3d(R);
  StreamCounts C = S.streams();
  EXPECT_EQ(C.Layers, static_cast<unsigned>(4 * R + 1));
  EXPECT_EQ(C.ZPlanes, static_cast<unsigned>(2 * R + 1));
  EXPECT_EQ(S.rowOffsets(0).size(), static_cast<size_t>(4 * R + 1));
}

TEST_P(StarRadiusTest, ValidatesAndClassifies) {
  StencilSpec S = StencilSpec::star3d(GetParam());
  EXPECT_EQ(S.validate(), "");
  EXPECT_EQ(S.shape(), StencilShape::Star);
}

INSTANTIATE_TEST_SUITE_P(Radii, StarRadiusTest,
                         ::testing::Values(1, 2, 3, 4, 6));
