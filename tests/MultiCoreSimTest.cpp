//===- tests/MultiCoreSimTest.cpp - multicore cache simulation tests ---------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cachesim/MultiCoreSim.h"

#include "ecm/LayerCondition.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

/// Small machine: 8K/32K private, 512K shared by up to 4 cores.
MachineModel tinyMachine() {
  MachineModel M = MachineModel::cascadeLakeSP();
  M.Name = "Tiny";
  M.Caches[0].SizeBytes = 8 * 1024;
  M.Caches[1].SizeBytes = 32 * 1024;
  M.Caches[2].SizeBytes = 512 * 1024;
  M.Caches[2].SharingCores = 4;
  return M;
}

} // namespace

TEST(MultiCoreCacheSim, PrivateLevelsAreIsolated) {
  MultiCoreCacheSim Sim(tinyMachine(), 2);
  // Core 0 warms a line; core 1 accessing the same line misses privately
  // but hits the shared level (one memory fill total).
  Sim.load(0, 0);
  Sim.load(1, 0);
  EXPECT_EQ(Sim.memTrafficBytes(), 64ull);
  // Both cores now hit privately.
  Sim.load(0, 8);
  Sim.load(1, 8);
  EXPECT_EQ(Sim.memTrafficBytes(), 64ull);
}

TEST(MultiCoreCacheSim, SeparateGroupsDoNotShare) {
  // 8 cores, 4 per shared group: cores 0 and 4 are in different groups.
  MultiCoreCacheSim Sim(tinyMachine(), 8);
  Sim.load(0, 0);
  Sim.load(4, 0);
  EXPECT_EQ(Sim.memTrafficBytes(), 2 * 64ull);
}

TEST(MultiCoreCacheSim, SharedCapacityContention) {
  // Two cores streaming disjoint 400 KiB regions (800 KiB total) thrash
  // a 512 KiB shared cache; one core's region alone fits.
  MachineModel M = tinyMachine();
  const unsigned N = 50 * 1024 / 8 * 8; // 400 KiB of doubles per core.
  auto StreamTwice = [&](MultiCoreCacheSim &Sim, unsigned Cores) {
    for (int Round = 0; Round < 2; ++Round)
      for (unsigned I = 0; I < N; ++I)
        for (unsigned C = 0; C < Cores; ++C)
          Sim.load(C, (static_cast<uint64_t>(C) << 30) + I * 8);
  };
  MultiCoreCacheSim One(M, 1);
  StreamTwice(One, 1);
  MultiCoreCacheSim Two(M, 2);
  StreamTwice(Two, 2);
  // Single core: second pass hits in the shared cache -> traffic ~ one
  // footprint.  Two cores: both passes miss -> ~double per-core traffic.
  double PerCoreOne = static_cast<double>(One.memTrafficBytes());
  double PerCoreTwo = Two.memTrafficBytes() / 2.0;
  EXPECT_GT(PerCoreTwo, PerCoreOne * 1.6);
}

TEST(MultiCoreTrace, SingleCoreMatchesExpectedStreaming) {
  MachineModel M = tinyMachine();
  MultiCoreTraffic T = runMultiCoreStencilTrace(
      M, 1, StencilSpec::heat3d(), {64, 64, 32}, KernelConfig(), 2);
  // Grid 2 x 1 MiB >> 512 KiB shared: streaming with row/plane reuse in
  // the private/shared levels -> 24..60 B/LUP at memory.
  EXPECT_GT(T.MemBytesPerLup, 20.0);
  EXPECT_LT(T.MemBytesPerLup, 64.0);
}

TEST(MultiCoreTrace, SharedPressureRaisesMemoryTraffic) {
  // The paper's socket effect the LC derating models: with more active
  // cores per shared cache, the per-core share shrinks and per-LUP
  // memory traffic rises.
  MachineModel M = tinyMachine();
  StencilSpec S = StencilSpec::star3d(2);
  GridDims Dims{48, 48, 32}; // Planes fit the shared cache for 1 core.
  MultiCoreTraffic T1 =
      runMultiCoreStencilTrace(M, 1, S, Dims, KernelConfig(), 2);
  MultiCoreTraffic T4 =
      runMultiCoreStencilTrace(M, 4, S, Dims, KernelConfig(), 2);
  EXPECT_GT(T4.MemBytesPerLup, T1.MemBytesPerLup * 1.1)
      << "1 core: " << T1.MemBytesPerLup
      << " B/LUP, 4 cores: " << T4.MemBytesPerLup;
}

TEST(MultiCoreTrace, AgreesWithLayerConditionDerating) {
  // The analytic ActiveCores derating must point the same direction as
  // the simulated multicore traffic.
  MachineModel M = tinyMachine();
  StencilSpec S = StencilSpec::star3d(2);
  GridDims Dims{48, 48, 32};
  LayerConditionAnalysis LC(M);
  double Pred1 = LC.analyze(S, Dims, KernelConfig(), 1).BytesPerLup.back();
  double Pred4 = LC.analyze(S, Dims, KernelConfig(), 4).BytesPerLup.back();
  MultiCoreTraffic Sim1 =
      runMultiCoreStencilTrace(M, 1, S, Dims, KernelConfig(), 2);
  MultiCoreTraffic Sim4 =
      runMultiCoreStencilTrace(M, 4, S, Dims, KernelConfig(), 2);
  EXPECT_GE(Pred4, Pred1);
  EXPECT_GE(Sim4.MemBytesPerLup, Sim1.MemBytesPerLup);
}

TEST(MultiCoreTrace, LupAccounting) {
  MachineModel M = tinyMachine();
  MultiCoreTraffic T = runMultiCoreStencilTrace(
      M, 3, StencilSpec::heat3d(), {16, 16, 15}, KernelConfig(), 2);
  EXPECT_EQ(T.Lups, 2ull * 16 * 16 * 15);
  EXPECT_GT(T.SharedBoundaryBytesPerLup, 0.0);
}
