//===- tests/StabilityTest.cpp - RK stability analysis tests -----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ode/Stability.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ys;

TEST(Stability, EulerStabilityFunction) {
  // R(z) = 1 + z.
  auto R = stabilityFunction(ButcherTableau::explicitEuler(), {-0.5, 0.0});
  EXPECT_NEAR(R.real(), 0.5, 1e-12);
  EXPECT_NEAR(R.imag(), 0.0, 1e-12);
}

TEST(Stability, RK4StabilityFunctionIsTruncatedExponential) {
  // R(z) = 1 + z + z^2/2 + z^3/6 + z^4/24 for any 4-stage order-4 method.
  std::complex<double> Z(-1.3, 0.7);
  auto R = stabilityFunction(ButcherTableau::classicRK4(), Z);
  std::complex<double> Want =
      1.0 + Z + Z * Z / 2.0 + Z * Z * Z / 6.0 + Z * Z * Z * Z / 24.0;
  EXPECT_NEAR(std::abs(R - Want), 0.0, 1e-12);
}

TEST(Stability, RealAxisLimits) {
  EXPECT_NEAR(realAxisStabilityLimit(ButcherTableau::explicitEuler()), 2.0,
              1e-4);
  EXPECT_NEAR(realAxisStabilityLimit(ButcherTableau::heun2()), 2.0, 1e-4);
  EXPECT_NEAR(realAxisStabilityLimit(ButcherTableau::kutta3()), 2.5127,
              1e-3);
  EXPECT_NEAR(realAxisStabilityLimit(ButcherTableau::classicRK4()), 2.7853,
              1e-3);
}

TEST(Stability, ImplicitBasesAreAStableOnSearchedInterval) {
  for (const ButcherTableau &TB : ButcherTableau::allImplicitBases())
    EXPECT_GE(realAxisStabilityLimit(TB, 1e-4, 50.0), 50.0) << TB.Name;
}

TEST(Stability, SpectralBoundOfLaplacian) {
  // 1-D second difference (1, -2, 1): symbol -2 + 2cos(k), max |.| = 4.
  StencilSpec S = StencilSpec::line1d(1, -2.0, 1.0);
  EXPECT_NEAR(stencilSpectralBound(S), 4.0, 1e-9);
}

TEST(Stability, SpectralBound3DLaplacian) {
  // 3-D (-6, 1x6): max |symbol| = 12 at the checkerboard mode.
  StencilSpec S = StencilSpec::star3d(1, -6.0, 1.0);
  EXPECT_NEAR(stencilSpectralBound(S), 12.0, 1e-9);
}

TEST(Stability, MaxStableStepMatchesClassicalBound) {
  // Forward Euler on u' = Lap_h u (h = 1): dt_max = 2/12 = 1/6.
  StencilSpec S = StencilSpec::star3d(1, -6.0, 1.0);
  double Dt = maxStableTimeStep(ButcherTableau::explicitEuler(), S);
  EXPECT_NEAR(Dt, 1.0 / 6.0, 1e-4);
}

TEST(Stability, HigherOrderBuysLargerSteps) {
  StencilSpec S = StencilSpec::star3d(1, -6.0, 1.0);
  double DtEuler = maxStableTimeStep(ButcherTableau::explicitEuler(), S);
  double DtRK4 = maxStableTimeStep(ButcherTableau::classicRK4(), S);
  EXPECT_GT(DtRK4, DtEuler * 1.35); // 2.785/2.
}

TEST(Stability, UnstableOutsideTheLimit) {
  ButcherTableau TB = ButcherTableau::classicRK4();
  double Limit = realAxisStabilityLimit(TB);
  EXPECT_LE(std::abs(stabilityFunction(TB, {-Limit + 1e-3, 0})), 1.0 + 1e-9);
  EXPECT_GT(std::abs(stabilityFunction(TB, {-Limit - 0.1, 0})), 1.0);
}
