//===- tests/StencilTraceTest.cpp - trace replay tests ----------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cachesim/StencilTrace.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

CacheSimLevelConfig level(const char *Name, unsigned long long Size,
                          unsigned Assoc = 8) {
  CacheSimLevelConfig C;
  C.Name = Name;
  C.SizeBytes = Size;
  C.Associativity = Assoc;
  C.LineBytes = 64;
  return C;
}

/// A small three-level hierarchy for fast deterministic traces.
CacheHierarchySim smallHierarchy() {
  return CacheHierarchySim({level("L1", 16 * 1024),
                            level("L2", 128 * 1024),
                            level("L3", 1024 * 1024, 16)});
}

} // namespace

TEST(StencilTrace, StreamingHeatTrafficNearAnalytic) {
  // Grid far larger than all cache levels: per warm sweep memory traffic
  // should approach 24 B/LUP (8 load + 8 write-allocate + 8 writeback)
  // while rows still fit in some level (plane reuse in L3 here).
  GridDims Dims{96, 96, 48}; // 2 buffers x 3.4 MiB >> 1 MiB L3.
  StencilTraceRunner Runner(StencilSpec::heat3d(), Dims, KernelConfig());
  CacheHierarchySim Sim = smallHierarchy();
  TraceTraffic T = Runner.run(Sim, 3);
  double Mem = T.BytesPerLup.back();
  EXPECT_GT(Mem, 20.0);
  EXPECT_LT(Mem, 30.0);
}

TEST(StencilTrace, TrafficMonotoneAcrossBoundaries) {
  GridDims Dims{64, 64, 32};
  StencilTraceRunner Runner(StencilSpec::star3d(2), Dims, KernelConfig());
  CacheHierarchySim Sim = smallHierarchy();
  TraceTraffic T = Runner.run(Sim, 2);
  // Outer boundaries can never move more data than inner ones (inclusive
  // streaming workload).
  for (size_t I = 1; I < T.BytesPerLup.size(); ++I)
    EXPECT_LE(T.BytesPerLup[I], T.BytesPerLup[I - 1] + 1.0);
}

TEST(StencilTrace, CacheResidentGridHasNoMemoryTraffic) {
  GridDims Dims{16, 16, 8}; // 2 buffers x 40 KiB: fits L3 easily.
  StencilTraceRunner Runner(StencilSpec::heat3d(), Dims, KernelConfig());
  CacheHierarchySim Sim = smallHierarchy();
  TraceTraffic T = Runner.run(Sim, 6);
  // After the cold start, sweeps hit in cache; amortized memory traffic
  // falls well below the streaming 24 B/LUP.
  EXPECT_LT(T.BytesPerLup.back(), 8.0);
}

TEST(StencilTrace, BlockingReducesInnerTrafficForWideStencil) {
  // star3d r2 on a wide grid: unblocked, the 5 z-planes (655 KiB) overflow
  // the 128 KiB L2, leaving only row reuse there; y-blocking shrinks the
  // plane footprint (5 x 128 x (16+4) x 8 B = 100 KiB incl. halo rows) so
  // plane reuse returns to L2 and L2<->L3 traffic drops sharply.
  GridDims Dims{128, 128, 24};
  StencilSpec S = StencilSpec::star3d(2);

  KernelConfig Unblocked;
  CacheHierarchySim SimU = smallHierarchy();
  TraceTraffic TU = StencilTraceRunner(S, Dims, Unblocked).run(SimU, 2);

  KernelConfig Blocked;
  Blocked.Block.Y = 16;
  CacheHierarchySim SimB = smallHierarchy();
  TraceTraffic TB = StencilTraceRunner(S, Dims, Blocked).run(SimB, 2);

  EXPECT_LT(TB.BytesPerLup[1], TU.BytesPerLup[1] * 0.7)
      << "blocked=" << TB.BytesPerLup[1] << " unblocked="
      << TU.BytesPerLup[1];
}

TEST(StencilTrace, WavefrontCutsMemoryTraffic) {
  // Temporal blocking with depth 4: amortized memory traffic per LUP must
  // drop well below the per-sweep streaming traffic.
  GridDims Dims{64, 64, 64}; // 2 x 2 MiB buffers > 1 MiB L3.
  StencilSpec S = StencilSpec::heat3d();

  KernelConfig Plain;
  CacheHierarchySim SimP = smallHierarchy();
  TraceTraffic TP = StencilTraceRunner(S, Dims, Plain).run(SimP, 4);

  KernelConfig Wave;
  Wave.WavefrontDepth = 4;
  Wave.Block.Z = 4;
  CacheHierarchySim SimW = smallHierarchy();
  TraceTraffic TW = StencilTraceRunner(S, Dims, Wave).runWavefront(SimW);

  EXPECT_LT(TW.BytesPerLup.back(), TP.BytesPerLup.back() * 0.55)
      << "wavefront=" << TW.BytesPerLup.back()
      << " plain=" << TP.BytesPerLup.back();
}

TEST(StencilTrace, LupAccounting) {
  GridDims Dims{10, 10, 10};
  StencilTraceRunner Runner(StencilSpec::heat3d(), Dims, KernelConfig());
  EXPECT_EQ(Runner.lupsPerSweep(), 1000);
  CacheHierarchySim Sim = smallHierarchy();
  TraceTraffic T = Runner.run(Sim, 3);
  EXPECT_EQ(T.Lups, 3000ull);
}

TEST(StencilTrace, MultiInputGridsDoNotAlias) {
  StencilSpec S("two", {{0, 0, 0, 1.0, 0}, {0, 0, 0, 0.5, 1}});
  GridDims Dims{32, 32, 8};
  StencilTraceRunner Runner(S, Dims, KernelConfig());
  CacheHierarchySim Sim = smallHierarchy();
  TraceTraffic T = Runner.run(Sim, 1);
  // Cold traffic ~ 3 grids x footprint: 2 input loads + out WA + out WB
  // still resident.  At minimum both inputs must be loaded separately.
  double MemPerLup = T.BytesPerLup.back();
  EXPECT_GT(MemPerLup, 16.0);
}
