//===- tests/HotPathAllocTest.cpp - zero-allocation hot path guard ---------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Asserts the steady-state sweep path performs no heap allocation: once
/// the executor's kernel plan is built and bound, repeat runSweep /
/// runTimeSteps calls on the same geometry must not touch the allocator.
/// The guard is a global operator new/delete replacement counting every
/// allocation, which is why this test lives in its own binary — the
/// replacement is process-wide and would distort allocation-sensitive
/// tests elsewhere.
///
//===----------------------------------------------------------------------===//

#include "codegen/KernelExecutor.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<long> GAllocCount{0};

long allocCount() { return GAllocCount.load(std::memory_order_relaxed); }

void *countedAlloc(size_t Size, size_t Align) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  void *P = Align > alignof(std::max_align_t)
                ? std::aligned_alloc(Align, (Size + Align - 1) / Align * Align)
                : std::malloc(Size);
  if (!P)
    throw std::bad_alloc();
  return P;
}

} // namespace

// Global replacements: every flavor funnels through countedAlloc/free so
// sized, aligned, and nothrow variants are all counted.
void *operator new(size_t Size) {
  return countedAlloc(Size, alignof(std::max_align_t));
}
void *operator new[](size_t Size) {
  return countedAlloc(Size, alignof(std::max_align_t));
}
void *operator new(size_t Size, std::align_val_t Align) {
  return countedAlloc(Size, static_cast<size_t>(Align));
}
void *operator new[](size_t Size, std::align_val_t Align) {
  return countedAlloc(Size, static_cast<size_t>(Align));
}
void *operator new(size_t Size, const std::nothrow_t &) noexcept {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(Size);
}
void *operator new[](size_t Size, const std::nothrow_t &) noexcept {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(Size);
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
void operator delete[](void *P, size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete(void *P, size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete[](void *P, size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete(void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}

using namespace ys;

namespace {

struct Fixture {
  StencilSpec Spec = StencilSpec::heat3d();
  GridDims Dims{24, 16, 12};
  KernelConfig Config;
  Grid U, V;

  explicit Fixture(Fold F, BlockSize B = BlockSize()) {
    Config.VectorFold = F;
    Config.Block = B;
    U = Grid(Dims, 1, F);
    V = Grid(Dims, 1, F);
    Rng R(11);
    U.fillRandom(R);
    V.copyHaloFrom(U);
  }
};

} // namespace

TEST(HotPathAlloc, RepeatSweepsAllocateNothing) {
  for (Fold F : {Fold{1, 1, 1}, Fold{8, 1, 1}, Fold{2, 2, 1}}) {
    SCOPED_TRACE(F.str());
    Fixture Fx(F, {8, 8, 4}); // Blocked: many tile ranges per sweep.
    KernelExecutor Exec(Fx.Spec, Fx.Config);
    const Grid *In = &Fx.U;
    // Warm run: builds and binds the plan (allocates).
    Exec.runSweep(&In, 1, Fx.V);
    ASSERT_EQ(Exec.planBuilds(), 1u);
    long Before = allocCount();
    for (int I = 0; I < 10; ++I)
      Exec.runSweep(&In, 1, Fx.V);
    EXPECT_EQ(allocCount(), Before)
        << "steady-state runSweep touched the heap";
    EXPECT_EQ(Exec.planBuilds(), 1u);
  }
}

TEST(HotPathAlloc, RepeatTimeSteppingAllocatesNothing) {
  Fixture Fx({4, 1, 1}, {0, 8, 4});
  KernelExecutor Exec(Fx.Spec, Fx.Config);
  Exec.runTimeSteps(Fx.U, Fx.V, 2); // Warm-up: plan build + bind.
  long Before = allocCount();
  Exec.runTimeSteps(Fx.U, Fx.V, 6);
  EXPECT_EQ(allocCount(), Before)
      << "steady-state runTimeSteps touched the heap";
  EXPECT_EQ(Exec.planBuilds(), 1u);
}

TEST(HotPathAlloc, CounterActuallyCounts) {
  // Self-test of the guard: an allocation must move the counter.
  long Before = allocCount();
  volatile int *P = new int[32];
  EXPECT_GT(allocCount(), Before);
  delete[] const_cast<int *>(P);
}
