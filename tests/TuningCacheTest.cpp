//===- tests/TuningCacheTest.cpp - Persistent tuning cache tests -----------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/TuningCache.h"

#include "arch/MachineModel.h"
#include "codegen/KernelExecutor.h"
#include "stencil/Grid.h"
#include "support/ThreadPool.h"
#include "tuner/MeasureHarness.h"
#include "tuner/OnlineTuner.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

using namespace ys;

namespace {

TuningCache::Entry makeEntry(const std::string &Key, double Mlups) {
  TuningCache::Entry E;
  E.Key = Key;
  E.Summary = "entry " + Key;
  E.Mlups = Mlups;
  E.SecondsPerStep = 1.0 / Mlups;
  E.Repeats = 3;
  return E;
}

std::string writeTempFile(const char *Name, const std::string &Text) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::ofstream Out(Path);
  Out << Text;
  return Path;
}

} // namespace

TEST(TuningCache, HitMissCounters) {
  TuningCache Cache;
  Cache.insert(makeEntry("aaaa", 100));
  EXPECT_EQ(Cache.lookup("bbbb"), nullptr);
  ASSERT_NE(Cache.lookup("aaaa"), nullptr);
  EXPECT_EQ(Cache.lookup("aaaa")->Mlups, 100);
  EXPECT_EQ(Cache.hits(), 2u);
  EXPECT_EQ(Cache.misses(), 1u);
  // peek() does not disturb the counters.
  EXPECT_NE(Cache.peek("aaaa"), nullptr);
  EXPECT_EQ(Cache.hits(), 2u);
  Cache.resetStats();
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), 0u);
}

TEST(TuningCache, InsertReplacesSameKey) {
  TuningCache Cache;
  Cache.insert(makeEntry("k", 10));
  Cache.insert(makeEntry("k", 20));
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(Cache.peek("k")->Mlups, 20);
}

TEST(TuningCache, FingerprintKeySensitivity) {
  StencilSpec S = StencilSpec::heat3d();
  std::string MachId = TuningCache::machineId(MachineModel::cascadeLakeSP());
  GridDims Dims{32, 32, 32};
  KernelConfig C;
  C.Block.Y = 8;
  std::string Base = TuningCache::fingerprint(S, MachId, Dims, C, 4);

  // Same inputs -> same fingerprint (stable across calls).
  EXPECT_EQ(TuningCache::fingerprint(S, MachId, Dims, C, 4), Base);

  // Each key component changes the fingerprint.
  EXPECT_NE(TuningCache::fingerprint(StencilSpec::star3d(2), MachId, Dims,
                                     C, 4),
            Base);
  EXPECT_NE(TuningCache::fingerprint(
                S, TuningCache::machineId(MachineModel::rome()), Dims, C, 4),
            Base);
  EXPECT_NE(TuningCache::fingerprint(S, MachId, GridDims{32, 32, 48}, C, 4),
            Base);
  KernelConfig C2 = C;
  C2.Block.Y = 16;
  EXPECT_NE(TuningCache::fingerprint(S, MachId, Dims, C2, 4), Base);
  KernelConfig C3 = C;
  C3.WavefrontDepth = 4;
  EXPECT_NE(TuningCache::fingerprint(S, MachId, Dims, C3, 4), Base);
  KernelConfig C4 = C;
  C4.StreamingStores = true;
  EXPECT_NE(TuningCache::fingerprint(S, MachId, Dims, C4, 4), Base);
  // Thread count is part of the key.
  EXPECT_NE(TuningCache::fingerprint(S, MachId, Dims, C, 8), Base);
  // A coefficient change (same shape) must change the key too.
  EXPECT_NE(TuningCache::fingerprint(StencilSpec::star3d(1, -6.0, 1.5),
                                     MachId,
                                     Dims, C, 4),
            TuningCache::fingerprint(StencilSpec::star3d(1), MachId, Dims,
                                     C, 4));
}

TEST(TuningCache, MachineIdChangesWithModelParameters) {
  MachineModel A = MachineModel::cascadeLakeSP();
  MachineModel B = A;
  EXPECT_EQ(TuningCache::machineId(A), TuningCache::machineId(B));
  B.Memory.BandwidthGBs *= 2;
  EXPECT_NE(TuningCache::machineId(A), TuningCache::machineId(B));
  MachineModel C = A;
  C.Caches[0].SizeBytes += 1024;
  EXPECT_NE(TuningCache::machineId(A), TuningCache::machineId(C));
  // The name is embedded, so same params + different name also differ.
  MachineModel D = A;
  D.Name = "renamed";
  EXPECT_NE(TuningCache::machineId(A), TuningCache::machineId(D));
}

TEST(TuningCache, FingerprintHonorsYsThreadsEnv) {
  // effectiveThreads() routes serial configs through the environment
  // default, so changing YS_THREADS changes the fingerprint.
  StencilSpec S = StencilSpec::heat3d();
  std::string MachId = TuningCache::machineId(MachineModel::cascadeLakeSP());
  GridDims Dims{16, 16, 16};
  KernelConfig C; // Threads == 1.

  const char *Saved = std::getenv("YS_THREADS");
  std::string SavedValue = Saved ? Saved : "";

  setenv("YS_THREADS", "3", 1);
  EXPECT_EQ(TuningCache::effectiveThreads(C), 3u);
  std::string F3 = TuningCache::fingerprint(S, MachId, Dims, C,
                                            TuningCache::effectiveThreads(C));
  setenv("YS_THREADS", "5", 1);
  EXPECT_EQ(TuningCache::effectiveThreads(C), 5u);
  std::string F5 = TuningCache::fingerprint(S, MachId, Dims, C,
                                            TuningCache::effectiveThreads(C));
  EXPECT_NE(F3, F5);

  // An explicit Threads > 1 wins over the environment.
  KernelConfig CT = C;
  CT.Threads = 7;
  EXPECT_EQ(TuningCache::effectiveThreads(CT), 7u);

  if (Saved)
    setenv("YS_THREADS", SavedValue.c_str(), 1);
  else
    unsetenv("YS_THREADS");
}

TEST(TuningCache, SerializeDeserializeRoundTrip) {
  TuningCache Cache;
  Cache.insert(makeEntry("0123456789abcdef", 1234.5));
  TuningCache::Entry Odd = makeEntry("fedcba9876543210", 7.25);
  Odd.Summary = "quoted \"name\" with \\ and\nnewline";
  Cache.insert(Odd);

  std::string Text = Cache.serialize();
  auto LoadedOr = TuningCache::deserialize(Text);
  ASSERT_TRUE(static_cast<bool>(LoadedOr));
  EXPECT_EQ(LoadedOr->size(), 2u);
  const TuningCache::Entry *E = LoadedOr->peek("0123456789abcdef");
  ASSERT_NE(E, nullptr);
  EXPECT_DOUBLE_EQ(E->Mlups, 1234.5);
  EXPECT_DOUBLE_EQ(E->SecondsPerStep, 1.0 / 1234.5);
  EXPECT_EQ(E->Repeats, 3u);
  const TuningCache::Entry *O = LoadedOr->peek("fedcba9876543210");
  ASSERT_NE(O, nullptr);
  EXPECT_EQ(O->Summary, Odd.Summary);
}

TEST(TuningCache, FileRoundTripAndMissingFile) {
  TuningCache Cache;
  Cache.insert(makeEntry("abcd", 42));
  std::string Path = testing::TempDir() + "/tuning_cache_test.json";
  ASSERT_FALSE(static_cast<bool>(Cache.saveFile(Path)));
  auto LoadedOr = TuningCache::loadFile(Path);
  ASSERT_TRUE(static_cast<bool>(LoadedOr));
  EXPECT_EQ(LoadedOr->size(), 1u);
  std::remove(Path.c_str());
  EXPECT_FALSE(static_cast<bool>(TuningCache::loadFile(Path)));
  // loadOrCreate on a missing file silently starts empty.
  EXPECT_EQ(TuningCache::loadOrCreate(Path).size(), 0u);
}

TEST(TuningCache, SaveFileIsAtomicAndRepairsCorruptTarget) {
  // saveFile writes through a same-directory temp file + rename: a save
  // over a corrupt (or concurrently read) file either fully replaces it
  // or leaves it untouched, and never leaves the temp file behind.
  std::string Path = writeTempFile("tuning_cache_atomic.json",
                                   "corrupt leftover from a killed run\n");
  TuningCache Cache;
  Cache.insert(makeEntry("abcd", 10));
  ASSERT_FALSE(static_cast<bool>(Cache.saveFile(Path)));
  auto LoadedOr = TuningCache::loadFile(Path);
  ASSERT_TRUE(static_cast<bool>(LoadedOr));
  EXPECT_EQ(LoadedOr->size(), 1u);
  for (const auto &Entry :
       std::filesystem::directory_iterator(testing::TempDir()))
    EXPECT_EQ(Entry.path().filename().string().find(
                  "tuning_cache_atomic.json.tmp"),
              std::string::npos)
        << Entry.path();
  std::remove(Path.c_str());

  // An unwritable destination reports failure without leaving debris.
  Error E = Cache.saveFile("/no/such/dir/cache.json");
  EXPECT_TRUE(static_cast<bool>(E));
}

TEST(TuningCache, BackendIsPartOfTheFingerprint) {
  // Plan-measured and jit-measured numbers must never answer each other's
  // queries; the historical plan keys are unchanged (an explicit "plan"
  // and the default produce the same key, so existing caches stay valid).
  StencilSpec S = StencilSpec::heat3d();
  std::string MachId = TuningCache::machineId(MachineModel::cascadeLakeSP());
  GridDims Dims{32, 32, 32};
  KernelConfig C;
  std::string Default = TuningCache::fingerprint(S, MachId, Dims, C, 4);
  EXPECT_EQ(TuningCache::fingerprint(S, MachId, Dims, C, 4, "plan"),
            Default);
  EXPECT_NE(TuningCache::fingerprint(S, MachId, Dims, C, 4, "jit"),
            Default);
}

TEST(TuningCache, CorruptFileRejectedWithoutCrashing) {
  std::string Garbage =
      writeTempFile("tuning_cache_garbage.json", "not json at all\n{{{\n");
  auto Or = TuningCache::loadFile(Garbage);
  ASSERT_FALSE(static_cast<bool>(Or));
  EXPECT_NE(Or.takeError().message().find("header"), std::string::npos);
  // loadOrCreate degrades to an empty cache instead of crashing or
  // serving stale entries.
  EXPECT_EQ(TuningCache::loadOrCreate(Garbage).size(), 0u);
  std::remove(Garbage.c_str());

  std::string Truncated = writeTempFile(
      "tuning_cache_truncated.json",
      "{\"format\":\"yasksite-tuning-cache\",\"version\":1}\n"
      "{\"key\":\"abcd\",\"mlups\":12.5\n"); // Missing brace + fields.
  auto Or2 = TuningCache::loadFile(Truncated);
  EXPECT_FALSE(static_cast<bool>(Or2));
  EXPECT_EQ(TuningCache::loadOrCreate(Truncated).size(), 0u);
  std::remove(Truncated.c_str());
}

TEST(TuningCache, OldVersionRejected) {
  std::string Old = writeTempFile(
      "tuning_cache_oldversion.json",
      "{\"format\":\"yasksite-tuning-cache\",\"version\":999}\n"
      "{\"key\":\"abcd\",\"summary\":\"\",\"mlups\":1,"
      "\"seconds_per_step\":1,\"repeats\":1}\n");
  auto Or = TuningCache::loadFile(Old);
  ASSERT_FALSE(static_cast<bool>(Or));
  EXPECT_NE(Or.takeError().message().find("version"), std::string::npos);
  EXPECT_EQ(TuningCache::loadOrCreate(Old).size(), 0u);
  std::remove(Old.c_str());
}

TEST(TuningCache, MeasureHarnessServesRepeatMeasurementsFromCache) {
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{16, 16, 16};
  MachineModel M = MachineModel::cascadeLakeSP();
  MeasureHarness Harness(S, Dims, /*Repeats=*/1, /*SweepsPerRepeat=*/1);
  TuningCache Cache;
  Harness.attachCache(&Cache, M);

  KernelConfig C;
  C.Block.Y = 8;
  double First = Harness.measure(C);
  unsigned RunsAfterFirst = Harness.totalKernelRuns();
  EXPECT_GT(First, 0);
  EXPECT_GT(RunsAfterFirst, 0u);
  EXPECT_EQ(Harness.cachedMeasurements(), 0u);
  EXPECT_EQ(Cache.size(), 1u);

  double Second = Harness.measure(C);
  EXPECT_EQ(Second, First); // Bit-identical: served from the cache.
  EXPECT_EQ(Harness.totalKernelRuns(), RunsAfterFirst); // No kernel ran.
  EXPECT_EQ(Harness.cachedMeasurements(), 1u);

  // A different configuration is a miss and runs the kernel again.
  KernelConfig C2;
  C2.Block.Y = 4;
  Harness.measure(C2);
  EXPECT_GT(Harness.totalKernelRuns(), RunsAfterFirst);
  EXPECT_EQ(Cache.size(), 2u);
}

TEST(TuningCache, OnlineTunerSkipsCachedTrialsAndStaysBitExact) {
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{14, 12, 16};
  MachineModel M = MachineModel::cascadeLakeSP();
  const int Steps = 12;

  KernelConfig A; // Unblocked.
  KernelConfig B;
  B.Block.Y = 4;
  KernelConfig C;
  C.WavefrontDepth = 2;
  C.Block.Z = 4;

  Grid URef(Dims, 1);
  Rng R(3);
  URef.fillRandom(R);
  Grid S0(Dims, 1);
  KernelExecutor Plain(S, KernelConfig());
  Plain.runTimeSteps(URef, S0, Steps);

  TuningCache Cache;

  // Cold run: all three candidates get timed and populate the cache.
  Grid U1(Dims, 1);
  Rng R1(3);
  U1.fillRandom(R1);
  Grid S1(Dims, 1);
  OnlineTuner Tuner1(S, {A, B, C}, 2);
  Tuner1.attachCache(&Cache, M);
  OnlineTuner::Result Cold = Tuner1.run(U1, S1, Steps);
  EXPECT_EQ(Cold.TrialsRun, 3u);
  EXPECT_EQ(Cold.CachedTrials, 0u);
  EXPECT_EQ(Cache.size(), 3u);
  EXPECT_EQ(Grid::maxAbsDiffInterior(URef, U1), 0.0);

  // Warm run: no timed trials, no warm-up, same numerics.
  Grid U2(Dims, 1);
  Rng R2(3);
  U2.fillRandom(R2);
  Grid S2(Dims, 1);
  OnlineTuner Tuner2(S, {A, B, C}, 2);
  Tuner2.attachCache(&Cache, M);
  OnlineTuner::Result Warm = Tuner2.run(U2, S2, Steps);
  EXPECT_EQ(Warm.TrialsRun, 0u);
  EXPECT_EQ(Warm.CachedTrials, 3u);
  EXPECT_EQ(Warm.WarmupSteps, 0);
  EXPECT_EQ(Warm.TuningSteps, 0);
  EXPECT_EQ(Warm.TrialLog.size(), 3u);
  EXPECT_EQ(Grid::maxAbsDiffInterior(URef, U2), 0.0);

  // The warm run's pick is the fastest cached candidate.
  double BestSec = -1;
  KernelConfig BestCfg;
  for (const auto &[Cfg, Sec] : Warm.TrialLog)
    if (BestSec < 0 || Sec < BestSec) {
      BestSec = Sec;
      BestCfg = Cfg;
    }
  EXPECT_TRUE(Warm.Best == BestCfg);
}

TEST(OnlineTunerAccounting, TuningStepsIncludeWarmup) {
  // Regression (measurement audit): TuningSteps must include the warm-up
  // steps everywhere it is consumed — it is the total step budget spent
  // before production begins.
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{12, 12, 12};
  Grid U(Dims, 1), Scratch(Dims, 1);
  Rng R(9);
  U.fillRandom(R);
  KernelConfig A;
  KernelConfig B;
  B.Block.Y = 4;
  OnlineTuner Tuner(S, {A, B}, 2);
  OnlineTuner::Result Result = Tuner.run(U, Scratch, 20);
  EXPECT_EQ(Result.TuningSteps,
            Result.WarmupSteps +
                static_cast<int>(Result.TrialsRun) * 2);
  EXPECT_GT(Result.WarmupSteps, 0);
}

TEST(OnlineTunerAccounting, TrialTimesNeverUnderflow) {
  // Tiny grids step in well under a microsecond; min-of-N chunk timing
  // must still report a strictly positive seconds-per-step (floored at
  // the timer resolution), never zero or denormal.
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{4, 4, 4};
  Grid U(Dims, 1), Scratch(Dims, 1);
  Rng R(1);
  U.fillRandom(R);
  KernelConfig A;
  KernelConfig B;
  B.Block.Y = 2;
  OnlineTuner Tuner(S, {A, B}, 4);
  OnlineTuner::Result Result = Tuner.run(U, Scratch, 40);
  ASSERT_EQ(Result.TrialLog.size(), 2u);
  for (const auto &[Cfg, Sec] : Result.TrialLog) {
    EXPECT_GE(Sec, 1e-9);
    EXPECT_TRUE(std::isnormal(Sec));
  }
}
