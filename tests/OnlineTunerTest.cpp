//===- tests/OnlineTunerTest.cpp - runtime auto-tuner tests ----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/OnlineTuner.h"

#include "arch/MachineModel.h"
#include "codegen/KernelExecutor.h"
#include "support/Timer.h"
#include "tuner/TuningCache.h"
#include "verify/GridPatterns.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

const GridDims kDims{12, 8, 6};

std::vector<KernelConfig> makeCandidates() {
  KernelConfig Plain;
  KernelConfig Blocked;
  Blocked.Block = {4, 4, 4};
  KernelConfig Odd;
  Odd.Block = {3, 5, 2};
  return {Plain, Blocked, Odd};
}

/// Plants a cache entry for \p C with a synthetic per-step time, as if it
/// had been measured on \p Id before.
void plant(TuningCache &Cache, const StencilSpec &S, const std::string &Id,
           const KernelConfig &C, double SecondsPerStep) {
  TuningCache::Entry E;
  E.Key = TuningCache::fingerprint(S, Id, kDims, C,
                                   TuningCache::effectiveThreads(C));
  E.Summary = "planted";
  E.SecondsPerStep = SecondsPerStep;
  E.Mlups = 1.0;
  E.Repeats = 1;
  Cache.insert(E);
}

/// U after \p Steps plain reference timesteps from the given pattern.
Grid expectedState(const StencilSpec &S, uint64_t Seed, int Steps) {
  Grid U(kDims, S.radius());
  fillPattern(U, GridPattern::Random, Seed);
  Grid Scratch(kDims, S.radius());
  Scratch.copyHaloFrom(U);
  KernelExecutor Exec(S, KernelConfig());
  Exec.runTimeSteps(U, Scratch, Steps);
  return U;
}

} // namespace

TEST(OnlineTuner, ConvergesOnPlantedOptimum) {
  // Seed the cache with a synthetic cost surface: every candidate is
  // "already measured", and the non-first candidate with block {3,5,2}
  // is planted as the fastest.  The tuner must lock onto it without
  // running a single timed trial.
  StencilSpec S = StencilSpec::heat3d();
  MachineModel M = MachineModel::cascadeLakeSP();
  std::string Id = TuningCache::machineId(M);
  std::vector<KernelConfig> Candidates = makeCandidates();

  TuningCache Cache;
  plant(Cache, S, Id, Candidates[0], 3e-3);
  plant(Cache, S, Id, Candidates[1], 2e-3);
  plant(Cache, S, Id, Candidates[2], 1e-3); // Planted optimum.

  OnlineTuner Tuner(S, Candidates, /*StepsPerTrial=*/2);
  Tuner.attachCache(&Cache, M);

  const int Steps = 7;
  Grid U(kDims, S.radius());
  fillPattern(U, GridPattern::Random, 5);
  Grid Scratch(kDims, S.radius());
  Scratch.copyHaloFrom(U);
  OnlineTuner::Result R = Tuner.run(U, Scratch, Steps);

  EXPECT_TRUE(R.Best == Candidates[2]) << R.Best.str();
  EXPECT_EQ(R.TrialsRun, 0u);
  EXPECT_EQ(R.CachedTrials, 3u);
  EXPECT_EQ(R.TuningSteps, 0); // All steps went to production.
  EXPECT_EQ(R.WarmupSteps, 0); // Fully cached rotation: no warm-up.
  ASSERT_EQ(R.TrialLog.size(), 3u);
  EXPECT_DOUBLE_EQ(R.TrialLog[2].second, 1e-3);

  // And the tuned run is numerically identical to plain time stepping.
  Grid Want = expectedState(S, 5, Steps);
  EXPECT_EQ(Grid::maxAbsDiffInterior(Want, U), 0.0);
}

TEST(OnlineTuner, DiamondScheduleCanWinThePlantedOptimum) {
  // Candidate rotation spanning all four schedules; the diamond config is
  // planted fastest.  The tuner must lock onto it from the cache alone and
  // the production steps it runs under the diamond schedule must stay
  // bit-identical to plain stepping.
  StencilSpec S = StencilSpec::heat3d();
  MachineModel M = MachineModel::cascadeLakeSP();
  std::string Id = TuningCache::machineId(M);

  KernelConfig Plain; // Sweep-equivalent: depth 1.
  KernelConfig Wave;
  Wave.WavefrontDepth = 4;
  Wave.Block.Z = 2;
  KernelConfig Diamond;
  Diamond.Sched = Schedule::Diamond;
  Diamond.WavefrontDepth = 4;
  Diamond.Block.Z = 2;
  KernelConfig Deep;
  Deep.Sched = Schedule::DeepTemporal;
  Deep.WavefrontDepth = 4;
  std::vector<KernelConfig> Candidates = {Plain, Wave, Diamond, Deep};

  TuningCache Cache;
  plant(Cache, S, Id, Candidates[0], 4e-3);
  plant(Cache, S, Id, Candidates[1], 3e-3);
  plant(Cache, S, Id, Candidates[2], 1e-3); // Diamond: planted optimum.
  plant(Cache, S, Id, Candidates[3], 2e-3);

  OnlineTuner Tuner(S, Candidates, /*StepsPerTrial=*/2);
  Tuner.attachCache(&Cache, M);

  const int Steps = 9;
  Grid U(kDims, S.radius());
  fillPattern(U, GridPattern::Random, 7);
  Grid Scratch(kDims, S.radius());
  Scratch.copyHaloFrom(U);
  OnlineTuner::Result R = Tuner.run(U, Scratch, Steps);

  EXPECT_TRUE(R.Best == Candidates[2]) << R.Best.str();
  EXPECT_EQ(R.Best.Sched, Schedule::Diamond);
  EXPECT_EQ(R.TrialsRun, 0u);
  EXPECT_EQ(R.CachedTrials, 4u);

  Grid Want = expectedState(S, 7, Steps);
  EXPECT_EQ(Grid::maxAbsDiffInterior(Want, U), 0.0);
}

TEST(OnlineTuner, WarmupStepsAreAccountedAndExcludedFromTiming) {
  StencilSpec S = StencilSpec::heat3d();
  std::vector<KernelConfig> Candidates = makeCandidates();
  OnlineTuner Tuner(S, Candidates, /*StepsPerTrial=*/2);

  const int Steps = 12;
  Grid U(kDims, S.radius());
  fillPattern(U, GridPattern::Random, 9);
  Grid Scratch(kDims, S.radius());
  Scratch.copyHaloFrom(U);
  OnlineTuner::Result R = Tuner.run(U, Scratch, Steps);

  // One untimed warm-up trial of StepsPerTrial steps, then one timed
  // trial per candidate; warm-up steps are real timesteps and count
  // toward TuningSteps (but not toward any TrialLog sample).
  EXPECT_EQ(R.WarmupSteps, 2);
  EXPECT_EQ(R.TrialsRun, 3u);
  EXPECT_EQ(R.CachedTrials, 0u);
  EXPECT_EQ(R.TuningSteps, R.WarmupSteps + 3 * 2);
  ASSERT_EQ(R.TrialLog.size(), 3u);
  for (const auto &[C, Sec] : R.TrialLog)
    EXPECT_GE(Sec, kMinMeasurableSeconds) << C.str();

  // Warm-up + trials + production together advanced exactly Steps steps.
  Grid Want = expectedState(S, 9, Steps);
  EXPECT_EQ(Grid::maxAbsDiffInterior(Want, U), 0.0);
}

TEST(OnlineTuner, SkipsWarmupWhenTheBudgetIsTooSmall) {
  StencilSpec S = StencilSpec::heat3d();
  std::vector<KernelConfig> Candidates = makeCandidates();
  OnlineTuner Tuner(S, Candidates, /*StepsPerTrial=*/2);

  // Steps == 3 < 2 * warm-up, so warming up would eat the whole budget:
  // the tuner must skip it, run what fits, and still advance exactly 3.
  const int Steps = 3;
  Grid U(kDims, S.radius());
  fillPattern(U, GridPattern::Random, 2);
  Grid Scratch(kDims, S.radius());
  Scratch.copyHaloFrom(U);
  OnlineTuner::Result R = Tuner.run(U, Scratch, Steps);

  EXPECT_EQ(R.WarmupSteps, 0);
  EXPECT_EQ(R.TrialsRun, 1u); // Only one 2-step trial fits in 3 steps.
  EXPECT_EQ(R.TuningSteps, 2);

  Grid Want = expectedState(S, 2, Steps);
  EXPECT_EQ(Grid::maxAbsDiffInterior(Want, U), 0.0);
}

TEST(OnlineTuner, TimedTrialsPopulateTheCacheForTheNextRun) {
  StencilSpec S = StencilSpec::heat3d();
  MachineModel M = MachineModel::rome();
  std::vector<KernelConfig> Candidates = makeCandidates();
  TuningCache Cache;

  OnlineTuner Tuner(S, Candidates, /*StepsPerTrial=*/2);
  Tuner.attachCache(&Cache, M);

  Grid U(kDims, S.radius());
  fillPattern(U, GridPattern::Random, 4);
  Grid Scratch(kDims, S.radius());
  Scratch.copyHaloFrom(U);
  OnlineTuner::Result First = Tuner.run(U, Scratch, 12);
  EXPECT_EQ(First.TrialsRun, 3u);
  EXPECT_EQ(Cache.size(), 3u);

  // A second tuning run on the same host resolves every candidate from
  // the cache and spends its entire budget on production steps.
  Grid U2(kDims, S.radius());
  fillPattern(U2, GridPattern::Random, 4);
  Grid Scratch2(kDims, S.radius());
  Scratch2.copyHaloFrom(U2);
  OnlineTuner::Result Second = Tuner.run(U2, Scratch2, 12);
  EXPECT_EQ(Second.TrialsRun, 0u);
  EXPECT_EQ(Second.CachedTrials, 3u);
  EXPECT_EQ(Second.TuningSteps, 0);
  EXPECT_EQ(Second.WarmupSteps, 0);
}

TEST(OnlineTuner, MixedCachedAndTimedTrialsCompeteForTheLockIn) {
  StencilSpec S = StencilSpec::heat3d();
  MachineModel M = MachineModel::cascadeLakeSP();
  std::string Id = TuningCache::machineId(M);
  std::vector<KernelConfig> Candidates = makeCandidates();

  // Only the last candidate is pre-measured — impossibly fast, so it must
  // beat both freshly timed trials for the lock-in.
  TuningCache Cache;
  plant(Cache, S, Id, Candidates[2], 1e-12);

  OnlineTuner Tuner(S, Candidates, /*StepsPerTrial=*/2);
  Tuner.attachCache(&Cache, M);

  const int Steps = 12;
  Grid U(kDims, S.radius());
  fillPattern(U, GridPattern::Random, 7);
  Grid Scratch(kDims, S.radius());
  Scratch.copyHaloFrom(U);
  OnlineTuner::Result R = Tuner.run(U, Scratch, Steps);

  EXPECT_EQ(R.CachedTrials, 1u);
  EXPECT_EQ(R.TrialsRun, 2u);
  EXPECT_EQ(R.WarmupSteps, 2); // Uncached trials remain: warm-up runs.
  EXPECT_TRUE(R.Best == Candidates[2]) << R.Best.str();

  Grid Want = expectedState(S, 7, Steps);
  EXPECT_EQ(Grid::maxAbsDiffInterior(Want, U), 0.0);
}
