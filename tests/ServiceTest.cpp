//===- tests/ServiceTest.cpp - Tuning service concurrency tests ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Concurrency contract of the TuningService (run under TSan via
// tools/run_concurrency_checks.sh):
//
//  * request deduplication — N concurrent identical measure queries cost
//    exactly one timed trial, broadcast to every waiter;
//  * admission control — model-only queries complete while a trial is in
//    flight, they never queue behind it;
//  * cache tiers — the sharded in-memory front and the JSON-lines
//    persistence tier agree after save/load;
//  * the serve protocol front (line-delimited JSON) on top of it all.
//
//===----------------------------------------------------------------------===//

#include "service/Serve.h"
#include "service/TuningService.h"
#include "support/Json.h"
#include "tuner/TuningCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

using namespace ys;

namespace {

MeasureQuery tinyQuery(long Bx = 0) {
  MeasureQuery Q;
  Q.Stencil = "heat3d";
  Q.Dims = GridDims{16, 8, 8};
  Q.Config.Block.X = Bx;
  Q.Backend = "plan"; // Independent of YS_BACKEND in the environment.
  return Q;
}

std::string tempPath(const char *Name) {
  return testing::TempDir() + "/" + Name + std::to_string(::getpid()) +
         ".jsonl";
}

TEST(ShardedCacheTest, InsertLookupAndStats) {
  ShardedTuningCache Front;
  EXPECT_EQ(Front.size(), 0u);
  EXPECT_FALSE(Front.lookup("0123456789abcdef"));
  EXPECT_EQ(Front.misses(), 1u);

  TuningCache::Entry E;
  E.Key = "0123456789abcdef";
  E.Summary = "test entry";
  E.Mlups = 42.0;
  E.SecondsPerStep = 0.5;
  E.Repeats = 3;
  Front.insert(E);
  EXPECT_EQ(Front.size(), 1u);

  auto Got = Front.lookup(E.Key);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(Got->Mlups, 42.0);
  EXPECT_EQ(Front.hits(), 1u);

  // peek() does not perturb the counters.
  EXPECT_TRUE(Front.peek(E.Key).has_value());
  EXPECT_EQ(Front.hits(), 1u);
  EXPECT_EQ(Front.misses(), 1u);
}

TEST(ShardedCacheTest, AbsorbAndSnapshotRoundTrip) {
  TuningCache Tier;
  for (int I = 0; I < 64; ++I) {
    TuningCache::Entry E;
    E.Key = TuningCache::fingerprintRaw("entry" + std::to_string(I));
    E.Summary = "entry " + std::to_string(I);
    E.Mlups = 100.0 + I;
    E.SecondsPerStep = 0.001 * (I + 1);
    E.Repeats = 3;
    Tier.insert(std::move(E));
  }
  ShardedTuningCache Front;
  Front.absorb(Tier);
  EXPECT_EQ(Front.size(), Tier.size());

  TuningCache Merged = Front.snapshot();
  ASSERT_EQ(Merged.size(), Tier.size());
  for (const auto &[Key, E] : Tier.entries()) {
    const TuningCache::Entry *Got = Merged.peek(Key);
    ASSERT_NE(Got, nullptr) << Key;
    EXPECT_EQ(Got->Summary, E.Summary);
    EXPECT_EQ(Got->Mlups, E.Mlups);
  }
}

// Eight concurrent identical measure queries through the real
// MeasureHarness: exactly one timed trial runs, every caller gets the
// same number.
TEST(TuningServiceTest, EightConcurrentIdenticalQueriesOneTrial) {
  ServiceOptions SO;
  SO.Repeats = 1;
  SO.SweepsPerRepeat = 1;
  TuningService Service(SO);

  constexpr int N = 8;
  std::vector<std::thread> Threads;
  std::vector<double> Mlups(N, -1.0);
  std::vector<std::string> Sources(N);
  std::atomic<int> Ready{0};
  std::mutex StartMutex;
  std::condition_variable StartCV;
  bool Go = false;

  for (int I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      {
        std::unique_lock<std::mutex> Lock(StartMutex);
        ++Ready;
        StartCV.notify_all();
        StartCV.wait(Lock, [&] { return Go; });
      }
      auto ROr = Service.measure(tinyQuery());
      ASSERT_TRUE(ROr) << ROr.takeError().message();
      Mlups[I] = ROr->Mlups;
      Sources[I] = ROr->Source;
    });
  {
    std::unique_lock<std::mutex> Lock(StartMutex);
    StartCV.wait(Lock, [&] { return Ready == N; });
    Go = true;
  }
  StartCV.notify_all();
  for (std::thread &T : Threads)
    T.join();

  ServiceStats S = Service.stats();
  EXPECT_EQ(S.TimedTrials, 1u) << "identical queries must coalesce";
  EXPECT_EQ(S.MeasureRequests, 8u);
  EXPECT_GT(S.KernelRuns, 0u) << "the one trial really ran the kernel";
  // Every request either missed (leader/coalesced) or hit the cache after
  // the trial landed; no second trial either way.
  EXPECT_EQ(S.CacheHits + S.CacheMisses, 8u);
  EXPECT_EQ(S.Coalesced, S.CacheMisses - 1);
  for (int I = 0; I < N; ++I) {
    EXPECT_EQ(Mlups[I], Mlups[0]) << "all callers see the same answer";
    EXPECT_TRUE(Sources[I] == "trial" || Sources[I] == "coalesced" ||
                Sources[I] == "cache")
        << Sources[I];
  }
  // A repeat query is now a pure cache hit.
  auto Again = Service.measure(tinyQuery());
  ASSERT_TRUE(Again);
  EXPECT_EQ(Again->Source, "cache");
  EXPECT_EQ(Service.stats().TimedTrials, 1u);
}

// Deterministic coalescing: with the trial blocked inside the measure
// seam, all followers are guaranteed in flight, so the split must be
// exactly 1 leader + 7 coalesced.
TEST(TuningServiceTest, CoalescingBroadcastsOneTrialToAllWaiters) {
  std::mutex GateMutex;
  std::condition_variable GateCV;
  bool Release = false;
  std::atomic<int> TrialCalls{0};

  ServiceOptions SO;
  SO.MeasureOverride = [&](const KernelConfig &) {
    TrialCalls.fetch_add(1);
    std::unique_lock<std::mutex> Lock(GateMutex);
    GateCV.wait(Lock, [&] { return Release; });
    return 123.0;
  };
  TuningService Service(SO);

  constexpr int N = 8;
  std::atomic<int> Done{0};
  std::vector<std::string> Sources(N);
  for (int I = 0; I < N; ++I)
    Service.measureAsync(tinyQuery(), [&, I](Expected<MeasureResult> ROr) {
      ASSERT_TRUE(ROr) << ROr.takeError().message();
      EXPECT_EQ(ROr->Mlups, 123.0);
      Sources[I] = ROr->Source;
      Done.fetch_add(1);
    });

  // The leader's trial is blocked on the gate; nobody has an answer yet.
  while (TrialCalls.load() == 0)
    std::this_thread::yield();
  EXPECT_EQ(Done.load(), 0);

  {
    std::lock_guard<std::mutex> Lock(GateMutex);
    Release = true;
  }
  GateCV.notify_all();
  Service.waitIdle();

  EXPECT_EQ(Done.load(), N);
  EXPECT_EQ(TrialCalls.load(), 1);
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.TimedTrials, 1u);
  EXPECT_EQ(S.Coalesced, 7u);
  int Leaders = 0, Followers = 0;
  for (const std::string &Src : Sources)
    Src == "trial" ? ++Leaders : ++Followers;
  EXPECT_EQ(Leaders, 1);
  EXPECT_EQ(Followers, 7);
}

// Admission control: model-only queries are answered on the calling
// thread while a timed trial is still in flight.
TEST(TuningServiceTest, ModelQueriesNeverQueueBehindTrials) {
  std::mutex GateMutex;
  std::condition_variable GateCV;
  bool Release = false;
  std::atomic<int> TrialCalls{0};

  ServiceOptions SO;
  SO.MeasureOverride = [&](const KernelConfig &) {
    TrialCalls.fetch_add(1);
    std::unique_lock<std::mutex> Lock(GateMutex);
    GateCV.wait(Lock, [&] { return Release; });
    return 77.0;
  };
  TuningService Service(SO);

  std::atomic<int> Done{0};
  Service.measureAsync(tinyQuery(),
                       [&](Expected<MeasureResult>) { Done.fetch_add(1); });
  while (TrialCalls.load() == 0)
    std::this_thread::yield();

  // Trial lane is occupied; every model-only query still completes now.
  PredictQuery PQ;
  PQ.Stencil = "heat3d";
  auto POr = Service.predict(PQ);
  ASSERT_TRUE(POr) << POr.takeError().message();
  EXPECT_GT(POr->Prediction.MLupsSaturated, 0.0);

  TuneQuery TQ;
  TQ.Stencil = "star3d:2";
  auto TOr = Service.tune(TQ);
  ASSERT_TRUE(TOr) << TOr.takeError().message();
  EXPECT_GT(TOr->Best.CandidatesEvaluated, 0u);
  EXPECT_FALSE(TOr->Measured);

  RankQuery RQ;
  RQ.Method = "rk4";
  RQ.Resolution = 16;
  auto ROr = Service.rank(RQ);
  ASSERT_TRUE(ROr) << ROr.takeError().message();
  EXPECT_FALSE(ROr->Ranked.empty());

  EmitQuery EQ;
  EQ.Stencil = "heat3d";
  auto SrcOr = Service.emitSource(EQ);
  ASSERT_TRUE(SrcOr);
  EXPECT_NE(SrcOr->find("for"), std::string::npos);

  // The trial was blocked the whole time.
  EXPECT_EQ(Done.load(), 0);
  {
    std::lock_guard<std::mutex> Lock(GateMutex);
    Release = true;
  }
  GateCV.notify_all();
  Service.waitIdle();
  EXPECT_EQ(Done.load(), 1);
}

// The sharded front and the JSON-lines persistence tier agree after
// save/load, and a fresh service warmed from the file answers from cache.
TEST(TuningServiceTest, FrontAgreesWithPersistenceTier) {
  std::string Path = tempPath("service_tier_");
  std::remove(Path.c_str());

  std::atomic<int> TrialCalls{0};
  ServiceOptions SO;
  SO.CachePath = Path;
  SO.MeasureOverride = [&](const KernelConfig &C) {
    TrialCalls.fetch_add(1);
    return 100.0 + static_cast<double>(C.Block.X);
  };
  {
    TuningService Service(SO);
    for (long Bx : {8, 16, 32, 64, 128}) {
      auto ROr = Service.measure(tinyQuery(Bx));
      ASSERT_TRUE(ROr) << ROr.takeError().message();
      EXPECT_EQ(ROr->Mlups, 100.0 + Bx);
    }
    EXPECT_EQ(TrialCalls.load(), 5);
    ASSERT_FALSE(Service.saveCache());

    auto TierOr = TuningCache::loadFile(Path);
    ASSERT_TRUE(TierOr) << TierOr.takeError().message();
    TuningCache Snapshot = Service.cacheFront().snapshot();
    ASSERT_EQ(TierOr->size(), Snapshot.size());
    for (const auto &[Key, E] : Snapshot.entries()) {
      const TuningCache::Entry *Tiered = TierOr->peek(Key);
      ASSERT_NE(Tiered, nullptr) << Key;
      EXPECT_EQ(Tiered->Summary, E.Summary);
      EXPECT_DOUBLE_EQ(Tiered->Mlups, E.Mlups);
      EXPECT_DOUBLE_EQ(Tiered->SecondsPerStep, E.SecondsPerStep);
      EXPECT_EQ(Tiered->Repeats, E.Repeats);
    }
  }

  // A new service instance loads the tier into its front: repeat queries
  // are pure cache hits, the measure seam is never called again.
  TrialCalls = 0;
  TuningService Warm(SO);
  EXPECT_EQ(Warm.cacheFront().size(), 5u);
  for (long Bx : {8, 16, 32, 64, 128}) {
    auto ROr = Warm.measure(tinyQuery(Bx));
    ASSERT_TRUE(ROr);
    EXPECT_EQ(ROr->Source, "cache");
    EXPECT_EQ(ROr->Mlups, 100.0 + Bx);
  }
  EXPECT_EQ(TrialCalls.load(), 0);
  std::remove(Path.c_str());
}

TEST(TuningServiceTest, ErrorsPropagateWithoutTouchingTrialLane) {
  TuningService Service;
  auto BadStencil = Service.measure([] {
    MeasureQuery Q;
    Q.Stencil = "noSuchStencil";
    return Q;
  }());
  EXPECT_FALSE(BadStencil);
  EXPECT_NE(BadStencil.takeError().message().find("unknown stencil"),
            std::string::npos);

  MeasureQuery BadMachineQ = tinyQuery();
  BadMachineQ.Machine = "noSuchMachine";
  auto BadMachine = Service.measure(BadMachineQ);
  EXPECT_FALSE(BadMachine);
  EXPECT_NE(BadMachine.takeError().message().find("unknown machine"),
            std::string::npos);

  MeasureQuery BadConfigQ = tinyQuery();
  BadConfigQ.Config.WavefrontDepth = 0;
  auto BadConfig = Service.measure(BadConfigQ);
  EXPECT_FALSE(BadConfig);
  EXPECT_NE(BadConfig.takeError().message().find("wavefront"),
            std::string::npos);

  MeasureQuery BadBackendQ = tinyQuery();
  BadBackendQ.Backend = "cuda";
  auto BadBackend = Service.measure(BadBackendQ);
  EXPECT_FALSE(BadBackend);
  EXPECT_NE(BadBackend.takeError().message().find("unknown backend"),
            std::string::npos);

  ServiceStats S = Service.stats();
  EXPECT_EQ(S.MeasureRequests, 4u);
  EXPECT_EQ(S.TimedTrials, 0u);
}

// Concurrent saveFile calls on one path: every save must succeed (unique
// temp names, atomic rename) and the surviving file must be loadable.
TEST(TuningCacheConcurrencyTest, ConcurrentSaveFileIsAtomic) {
  TuningCache Cache;
  for (int I = 0; I < 50; ++I) {
    TuningCache::Entry E;
    E.Key = TuningCache::fingerprintRaw("save" + std::to_string(I));
    E.Summary = "entry " + std::to_string(I);
    E.Mlups = I;
    E.Repeats = 1;
    Cache.insert(std::move(E));
  }
  std::string Path = tempPath("concurrent_save_");
  std::remove(Path.c_str());

  constexpr int N = 8;
  std::vector<std::thread> Threads;
  std::vector<std::string> Failures(N);
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      for (int Round = 0; Round < 4; ++Round)
        if (Error E = Cache.saveFile(Path))
          Failures[I] = E.message();
    });
  for (std::thread &T : Threads)
    T.join();
  for (int I = 0; I < N; ++I)
    EXPECT_TRUE(Failures[I].empty()) << Failures[I];

  auto LoadedOr = TuningCache::loadFile(Path);
  ASSERT_TRUE(LoadedOr) << LoadedOr.takeError().message();
  EXPECT_EQ(LoadedOr->size(), 50u);
  std::remove(Path.c_str());
}

// The serve front: line-delimited JSON requests against a service whose
// measure seam is instrumented.
TEST(ServeProtocolTest, RequestsAndResponsesLineByLine) {
  std::atomic<int> TrialCalls{0};
  ServiceOptions SO;
  SO.MeasureOverride = [&](const KernelConfig &) {
    TrialCalls.fetch_add(1);
    return 250.0;
  };

  std::istringstream In(
      "{\"op\":\"ping\",\"id\":\"a\"}\n"
      "\n" // blank lines are skipped
      "{\"op\":\"predict\",\"stencil\":\"heat3d\",\"dims\":\"64\","
      "\"cores\":4}\n"
      "{\"op\":\"tune\",\"stencil\":\"star3d:2\"}\n"
      "{\"op\":\"measure\",\"stencil\":\"heat3d\",\"dims\":\"16x8x8\","
      "\"backend\":\"plan\",\"id\":\"m1\"}\n"
      "{\"op\":\"measure\",\"stencil\":\"heat3d\",\"dims\":\"16x8x8\","
      "\"backend\":\"plan\",\"id\":\"m2\"}\n"
      "{\"op\":\"rank\",\"method\":\"rk4\",\"n\":16}\n"
      "{\"op\":\"emit\",\"stencil\":\"heat3d\"}\n"
      "{\"op\":\"predict\",\"stencil\":\"nope\"}\n"
      "not json\n"
      "{\"op\":\"wat\"}\n"
      "{\"op\":\"stats\"}\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"ping\"}\n"); // after shutdown: must not be answered
  std::ostringstream OutStream;
  EXPECT_EQ(runServeLoop(In, OutStream, SO), 0);

  std::vector<std::string> Lines;
  {
    std::istringstream Split(OutStream.str());
    std::string Line;
    while (std::getline(Split, Line))
      Lines.push_back(Line);
  }
  ASSERT_EQ(Lines.size(), 12u) << OutStream.str();
  for (const std::string &Line : Lines)
    EXPECT_TRUE(jsonLooksWellFormed(Line)) << Line;

  auto Field = [&](size_t I, const char *Key) {
    return jsonStringField(Lines[I], Key).value_or("");
  };
  auto Ok = [&](size_t I) { return jsonBoolField(Lines[I], "ok"); };
  EXPECT_EQ(Field(0, "op"), "ping");
  EXPECT_EQ(Field(0, "id"), "a");
  EXPECT_EQ(Ok(0), true);

  EXPECT_EQ(Field(1, "op"), "predict");
  EXPECT_GT(jsonNumberField(Lines[1], "mlups").value_or(0), 0.0);

  EXPECT_EQ(Field(2, "op"), "tune");
  EXPECT_GT(jsonNumberField(Lines[2], "candidates").value_or(0), 0.0);

  EXPECT_EQ(Field(3, "id"), "m1");
  EXPECT_EQ(Field(3, "source"), "trial");
  EXPECT_EQ(jsonNumberField(Lines[3], "mlups").value_or(0), 250.0);
  EXPECT_EQ(Field(4, "id"), "m2");
  EXPECT_EQ(Field(4, "source"), "cache");
  EXPECT_EQ(TrialCalls.load(), 1) << "repeat measure answered from cache";

  EXPECT_EQ(Field(5, "op"), "rank");
  EXPECT_NE(Field(5, "ranked"), "");

  EXPECT_EQ(Field(6, "op"), "emit");
  EXPECT_NE(Field(6, "source").find("for"), std::string::npos);

  EXPECT_EQ(Ok(7), false);
  EXPECT_NE(Field(7, "error").find("unknown stencil"), std::string::npos);

  EXPECT_EQ(Ok(8), false);
  EXPECT_NE(Field(8, "error").find("malformed"), std::string::npos);

  EXPECT_EQ(Ok(9), false);
  EXPECT_NE(Field(9, "error").find("unknown op"), std::string::npos);

  EXPECT_EQ(Field(10, "op"), "stats");
  EXPECT_EQ(jsonNumberField(Lines[10], "timed_trials").value_or(-1), 1.0);
  EXPECT_EQ(jsonNumberField(Lines[10], "cache_hits").value_or(-1), 1.0);

  EXPECT_EQ(Field(11, "op"), "shutdown");
  EXPECT_EQ(Ok(11), true);
}

// Robustness sweep for the serve loop: CRLF / trailing-whitespace framing,
// malformed lines, unknown ops, and bad config fields must each produce an
// error response without killing the loop — later requests still answer.
TEST(ServeProtocolTest, BadInputKeepsTheLoopAlive) {
  ServiceOptions SO;
  SO.MeasureOverride = [](const KernelConfig &) { return 100.0; };

  std::istringstream In(
      "{\"op\":\"ping\",\"id\":\"crlf\"}\r\n" // CRLF transport framing
      "{\"op\":\"ping\",\"id\":\"pad\"}   \t\n" // trailing whitespace
      "\r\n"        // whitespace-only line: skipped, not malformed
      "not json\n"  // malformed: error, loop alive
      "{\"op\":\"wat\"}\n" // unknown op: error, loop alive
      "{\"op\":\"predict\",\"stencil\":\"heat3d\",\"dims\":\"64\","
      "\"schedule\":\"zigzag\"}\n" // unknown schedule: error, loop alive
      "{\"op\":\"predict\",\"stencil\":\"heat3d\",\"dims\":\"256\","
      "\"bz\":8,\"wf\":4,\"schedule\":\"diamond\",\"sim\":\"off\"}\n"
      "{\"op\":\"ping\",\"id\":\"alive\"}\n"); // the loop survived it all
  std::ostringstream OutStream;
  EXPECT_EQ(runServeLoop(In, OutStream, SO), 0); // EOF exit, no shutdown op.

  std::vector<std::string> Lines;
  {
    std::istringstream Split(OutStream.str());
    std::string Line;
    while (std::getline(Split, Line))
      Lines.push_back(Line);
  }
  ASSERT_EQ(Lines.size(), 7u) << OutStream.str();
  for (const std::string &Line : Lines)
    EXPECT_TRUE(jsonLooksWellFormed(Line)) << Line;

  auto Field = [&](size_t I, const char *Key) {
    return jsonStringField(Lines[I], Key).value_or("");
  };
  auto Ok = [&](size_t I) { return jsonBoolField(Lines[I], "ok"); };

  EXPECT_EQ(Ok(0), true) << "CRLF-terminated request must parse";
  EXPECT_EQ(Field(0, "id"), "crlf");
  EXPECT_EQ(Ok(1), true) << "trailing whitespace must be trimmed";
  EXPECT_EQ(Field(1, "id"), "pad");

  EXPECT_EQ(Ok(2), false);
  EXPECT_NE(Field(2, "error").find("malformed"), std::string::npos);
  EXPECT_EQ(Ok(3), false);
  EXPECT_NE(Field(3, "error").find("unknown op"), std::string::npos);
  EXPECT_EQ(Ok(4), false);
  EXPECT_NE(Field(4, "error").find("unknown schedule"), std::string::npos);

  EXPECT_EQ(Ok(5), true) << Lines[5];
  EXPECT_NE(Field(5, "config").find("sched=diamond"), std::string::npos)
      << Lines[5];
  EXPECT_GT(jsonNumberField(Lines[5], "mlups").value_or(0), 0.0);

  EXPECT_EQ(Ok(6), true);
  EXPECT_EQ(Field(6, "id"), "alive");
}

// The predict-path simulator cross-check: Auto picks a full replay for
// small (residency-ambiguous) grids, samples streaming grids, and skips
// with a reason when even the sampled replay busts the service budget.
TEST(TuningServiceTest, PredictSimCheckFollowsTheAutoPolicy) {
  TuningService Service((ServiceOptions()));

  // Default queries stay model-only: no replay, no sim fields.
  PredictQuery Plain;
  Plain.Stencil = "heat3d";
  Plain.Dims = GridDims{48, 48, 32};
  auto PlainOr = Service.predict(Plain);
  ASSERT_TRUE(PlainOr) << PlainOr.takeError().message();
  EXPECT_FALSE(PlainOr->SimChecked);
  EXPECT_EQ(PlainOr->SimModeUsed, "");
  EXPECT_EQ(Service.stats().SimChecks, 0ull);

  // Small grid: the working set is cache-resident on CLX, the sampled
  // plan declines, and the (cheap) exact replay runs instead.
  PredictQuery Small = Plain;
  Small.SimCheck = true;
  auto SmallOr = Service.predict(Small);
  ASSERT_TRUE(SmallOr) << SmallOr.takeError().message();
  EXPECT_TRUE(SmallOr->SimChecked);
  EXPECT_EQ(SmallOr->SimModeUsed, "full");
  EXPECT_EQ(SmallOr->SimTraffic.ReplayedLups, SmallOr->SimTraffic.Lups);
  EXPECT_GT(SmallOr->SimMemBytesPerLup, 0.0);
  // The model legitimately predicts zero memory traffic for this
  // cache-resident grid; the replay reports the cold-start bytes.
  EXPECT_GE(SmallOr->ModelMemBytesPerLup, 0.0);
  EXPECT_GE(SmallOr->SimDeltaFraction, 0.0);

  // Streaming grid on a per-core cache slice: the plan samples and the
  // replay covers a small fraction of the grid.
  PredictQuery Streaming;
  Streaming.Stencil = "heat3d";
  Streaming.Dims = GridDims{96, 96, 72};
  Streaming.Cores = 2;
  Streaming.SimCheck = true;
  auto StreamOr = Service.predict(Streaming);
  ASSERT_TRUE(StreamOr) << StreamOr.takeError().message();
  EXPECT_TRUE(StreamOr->SimChecked);
  EXPECT_EQ(StreamOr->SimModeUsed, "sampled") << StreamOr->SimNote;
  EXPECT_LT(StreamOr->SimTraffic.ReplayedLups, StreamOr->SimTraffic.Lups);
  EXPECT_GT(StreamOr->SimMemBytesPerLup, 0.0);

  // Production-sized grid: even the sampled prefix exceeds the replay
  // budget, so the check is skipped with a reason instead of stalling.
  PredictQuery Huge;
  Huge.Stencil = "heat3d";
  Huge.Dims = GridDims{768, 768, 256};
  Huge.SimCheck = true;
  auto HugeOr = Service.predict(Huge);
  ASSERT_TRUE(HugeOr) << HugeOr.takeError().message();
  EXPECT_FALSE(HugeOr->SimChecked);
  EXPECT_EQ(HugeOr->SimModeUsed, "skipped");
  EXPECT_NE(HugeOr->SimNote.find("budget"), std::string::npos)
      << HugeOr->SimNote;

  EXPECT_EQ(Service.stats().SimChecks, 2ull);
}

// Serve-protocol surface of the sim cross-check: the "sim" request field
// and the sim_* response fields.
TEST(ServeProtocolTest, PredictSimFieldsFollowTheRequest) {
  std::istringstream In(
      "{\"op\":\"predict\",\"stencil\":\"heat3d\",\"dims\":\"48x48x32\","
      "\"id\":\"auto\"}\n"
      "{\"op\":\"predict\",\"stencil\":\"heat3d\",\"dims\":\"48x48x32\","
      "\"sim\":\"off\",\"id\":\"off\"}\n"
      "{\"op\":\"predict\",\"stencil\":\"heat3d\",\"dims\":\"48x48x32\","
      "\"sim\":\"bogus\",\"id\":\"bad\"}\n"
      "{\"op\":\"stats\"}\n"
      "{\"op\":\"shutdown\"}\n");
  std::ostringstream OutStream;
  EXPECT_EQ(runServeLoop(In, OutStream, ServiceOptions()), 0);

  std::vector<std::string> Lines;
  {
    std::istringstream Split(OutStream.str());
    std::string Line;
    while (std::getline(Split, Line))
      Lines.push_back(Line);
  }
  ASSERT_EQ(Lines.size(), 5u) << OutStream.str();

  // Default is "auto": the small grid runs an exact replay and reports
  // the delta against the model.
  EXPECT_EQ(jsonStringField(Lines[0], "sim_mode").value_or(""), "full");
  EXPECT_GT(jsonNumberField(Lines[0], "sim_mem_blup").value_or(0), 0.0);
  EXPECT_GE(jsonNumberField(Lines[0], "model_mem_blup").value_or(-1), 0.0);
  EXPECT_GE(jsonNumberField(Lines[0], "sim_delta_pct").value_or(-1), 0.0);
  EXPECT_GT(jsonNumberField(Lines[0], "sim_replayed_lups").value_or(0), 0.0);

  // "sim":"off" suppresses the cross-check entirely.
  EXPECT_EQ(jsonBoolField(Lines[1], "ok"), true);
  EXPECT_EQ(jsonStringField(Lines[1], "sim_mode").has_value(), false)
      << Lines[1];

  // Unknown modes are a request error.
  EXPECT_EQ(jsonBoolField(Lines[2], "ok"), false);
  EXPECT_NE(jsonStringField(Lines[2], "error").value_or("").find(
                "unknown sim mode"),
            std::string::npos)
      << Lines[2];

  EXPECT_EQ(jsonNumberField(Lines[3], "sim_checks").value_or(-1), 1.0);
}

} // namespace
