//===- tests/BlockingSelectorTest.cpp - analytic tuning tests ---------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ecm/BlockingSelector.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

const GridDims BigDims{512, 512, 256};

} // namespace

TEST(BlockingSelector, AnalyticChoiceSatisfiesLayerCondition) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  BlockingSelector Sel(Model);
  StencilSpec S = StencilSpec::star3d(4);
  BlockingChoice Choice =
      Sel.selectAnalytic(S, BigDims, KernelConfig(), /*TargetLevel=*/1);
  ASSERT_GT(Choice.Config.Block.Y, 0);
  EXPECT_EQ(Choice.Prediction.Traffic.LevelReuse[1], ReuseClass::Plane);
  EXPECT_EQ(Choice.CandidatesEvaluated, 1u);
}

TEST(BlockingSelector, AnalyticSkipsBlockingWhenGridFits) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  BlockingSelector Sel(Model);
  GridDims Small{64, 64, 64};
  BlockingChoice Choice = Sel.selectAnalytic(StencilSpec::heat3d(), Small,
                                             KernelConfig(), 2);
  // 4 x 32 KiB planes fit L3 trivially: no blocking required.
  EXPECT_TRUE(Choice.Config.Block.isUnblocked());
}

TEST(BlockingSelector, AnalyticBeatsUnblockedForWideStencils) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  BlockingSelector Sel(Model);
  StencilSpec S = StencilSpec::star3d(4);
  BlockingChoice Choice = Sel.selectAnalytic(S, BigDims, KernelConfig());
  ECMPrediction Unblocked = Model.predict(S, BigDims, KernelConfig());
  EXPECT_GT(Choice.Prediction.MLupsSaturated, Unblocked.MLupsSaturated);
}

TEST(BlockingSelector, CandidateSpaceRespectsDims) {
  GridDims Tiny{32, 16, 8};
  std::vector<KernelConfig> Space =
      BlockingSelector::candidateSpace(Tiny, KernelConfig(), false);
  ASSERT_FALSE(Space.empty());
  for (const KernelConfig &C : Space) {
    EXPECT_LE(C.Block.Y, 16);
    EXPECT_LE(C.Block.Z, 8);
    EXPECT_EQ(C.WavefrontDepth, 1);
  }
}

TEST(BlockingSelector, CandidateSpaceAddsTemporalSchedules) {
  std::vector<KernelConfig> Plain =
      BlockingSelector::candidateSpace(BigDims, KernelConfig(), false);
  std::vector<KernelConfig> Temporal =
      BlockingSelector::candidateSpace(BigDims, KernelConfig(), true);
  EXPECT_GT(Temporal.size(), Plain.size());
  for (const KernelConfig &C : Plain)
    EXPECT_EQ(C.WavefrontDepth, 1);

  bool SawWavefront = false, SawDiamond = false, SawDeepTemporal = false;
  for (const KernelConfig &C : Temporal) {
    EXPECT_TRUE(C.validate().empty()) << C.str();
    if (C.WavefrontDepth <= 1)
      continue;
    switch (C.Sched) {
    case Schedule::Wavefront:
      SawWavefront = true;
      EXPECT_GT(C.Block.Z, 0); // Wavefront only with z-blocking.
      break;
    case Schedule::Diamond:
      SawDiamond = true;
      EXPECT_GT(C.Block.Z, 0); // The z block doubles as the tile width.
      break;
    case Schedule::DeepTemporal:
      SawDeepTemporal = true;
      EXPECT_EQ(C.Block.Z, 0); // Per-plane pipeline: z block irrelevant.
      EXPECT_GE(C.WavefrontDepth, 4); // Exists for high depths.
      break;
    case Schedule::Sweep:
      ADD_FAILURE() << "sweep candidate with temporal depth: " << C.str();
      break;
    }
  }
  EXPECT_TRUE(SawWavefront);
  EXPECT_TRUE(SawDiamond);
  EXPECT_TRUE(SawDeepTemporal);
}

TEST(BlockingSelector, SelectBestIsArgmaxOverSpace) {
  MachineModel M = MachineModel::rome();
  ECMModel Model(M);
  BlockingSelector Sel(Model);
  StencilSpec S = StencilSpec::star3d(2);
  BlockingChoice Best = Sel.selectBest(S, BigDims, KernelConfig(), true);
  EXPECT_EQ(Best.CandidatesEvaluated,
            BlockingSelector::candidateSpace(BigDims, KernelConfig(), true)
                .size());
  for (const KernelConfig &C :
       BlockingSelector::candidateSpace(BigDims, KernelConfig(), true)) {
    ECMPrediction P = Model.predict(S, BigDims, C);
    EXPECT_LE(P.MLupsSaturated,
              Best.Prediction.MLupsSaturated * 1.001 + 1e-9)
        << C.str();
  }
}

TEST(BlockingSelector, SelectBestAtLeastAnalytic) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  BlockingSelector Sel(Model);
  StencilSpec S = StencilSpec::star3d(4);
  BlockingChoice Analytic = Sel.selectAnalytic(S, BigDims, KernelConfig());
  BlockingChoice Best = Sel.selectBest(S, BigDims, KernelConfig(), false);
  EXPECT_GE(Best.Prediction.MLupsSaturated,
            Analytic.Prediction.MLupsSaturated * 0.9);
}
