//===- tests/VectorFoldTest.cpp - fold selection tests ----------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/VectorFold.h"

#include <gtest/gtest.h>

using namespace ys;

TEST(VectorFold, CandidatesForEight) {
  // Factorizations of 8 into (x,y,z): 8 = 2^3 -> C(3+2,2) = 10 ordered
  // triples.
  std::vector<Fold> C = VectorFold::candidates(8);
  EXPECT_EQ(C.size(), 10u);
  for (const Fold &F : C)
    EXPECT_EQ(F.elems(), 8);
}

TEST(VectorFold, CandidatesForFour) {
  std::vector<Fold> C = VectorFold::candidates(4);
  EXPECT_EQ(C.size(), 6u); // (4,1,1),(1,4,1),(1,1,4),(2,2,1),(2,1,2),(1,2,2)
}

TEST(VectorFold, CandidatesForOne) {
  std::vector<Fold> C = VectorFold::candidates(1);
  ASSERT_EQ(C.size(), 1u);
  EXPECT_TRUE(C[0].isScalar());
}

TEST(VectorFold, TouchedVectorsScalarFoldEqualsPointCount) {
  StencilSpec S = StencilSpec::star3d(1);
  Fold Scalar;
  EXPECT_EQ(VectorFold::touchedVectors(S, Scalar), 7u);
}

TEST(VectorFold, TouchedVectors1DFoldHeat) {
  // heat3d with 8x1x1 fold: x-neighbors spill into 2 extra vectors, y/z
  // neighbors one vector each -> 1 (center covers x..) Let's count:
  // center block {0}, x+1 reaches block 1, x-1 block -1; each y/z
  // neighbor its own block: 3 + 4 = 7.
  StencilSpec S = StencilSpec::star3d(1);
  Fold F;
  F.X = 8;
  EXPECT_EQ(VectorFold::touchedVectors(S, F), 7u);
}

TEST(VectorFold, RadiusOneStarIsFoldInsensitive) {
  // For the r1 star every fold of 8 touches the same 7 vector blocks; the
  // fold win only appears at larger radii.
  StencilSpec S = StencilSpec::star3d(1);
  Fold F1d;
  F1d.X = 8;
  Fold F2d;
  F2d.X = 4;
  F2d.Y = 2;
  EXPECT_EQ(VectorFold::touchedVectors(S, F2d),
            VectorFold::touchedVectors(S, F1d));
}

TEST(VectorFold, FoldingReducesTouchedVectorsAtRadiusFour) {
  // star3d r4: 1-D fold touches 19 blocks (every y/z offset its own
  // vector); 4x2x1 shares y-offsets pairwise (15); 2x2x2 shares in all
  // transverse dims (13).
  StencilSpec S = StencilSpec::star3d(4);
  Fold F1d;
  F1d.X = 8;
  Fold F421;
  F421.X = 4;
  F421.Y = 2;
  Fold F222;
  F222.X = 2;
  F222.Y = 2;
  F222.Z = 2;
  EXPECT_EQ(VectorFold::touchedVectors(S, F1d), 19u);
  EXPECT_EQ(VectorFold::touchedVectors(S, F421), 15u);
  EXPECT_EQ(VectorFold::touchedVectors(S, F222), 13u);
}

TEST(VectorFold, SelectPicksMultiDimFoldOnAVX512) {
  MachineModel M = MachineModel::cascadeLakeSP();
  StencilSpec S = StencilSpec::star3d(4);
  Fold F = VectorFold::select(S, M);
  EXPECT_EQ(F.elems(), 8);
  // YASK picks a multi-dimensional fold for long-range 3-D stars.
  EXPECT_GT(F.Y * F.Z, 1);
}

TEST(VectorFold, SelectRespects2DProblems) {
  MachineModel M = MachineModel::cascadeLakeSP();
  StencilSpec S = StencilSpec::star2d(1);
  Fold F = VectorFold::select(S, M);
  EXPECT_EQ(F.Z, 1);
  EXPECT_EQ(F.elems(), 8);
}

TEST(VectorFold, SelectRespects1DProblems) {
  MachineModel M = MachineModel::rome();
  StencilSpec S = StencilSpec::line1d(1);
  Fold F = VectorFold::select(S, M);
  EXPECT_EQ(F.Y, 1);
  EXPECT_EQ(F.Z, 1);
  EXPECT_EQ(F.X, 4);
}

TEST(VectorFold, SelectOnRomeUsesFourElems) {
  MachineModel M = MachineModel::rome();
  Fold F = VectorFold::select(StencilSpec::star3d(1), M);
  EXPECT_EQ(F.elems(), 4);
}

TEST(VectorFold, SelectedBeatsOrMatchesAllCandidates) {
  MachineModel M = MachineModel::cascadeLakeSP();
  for (int R : {1, 2, 4}) {
    StencilSpec S = StencilSpec::star3d(R);
    Fold Best = VectorFold::select(S, M);
    unsigned long long BestScore = VectorFold::touchedVectors(S, Best);
    for (const Fold &F : VectorFold::candidates(8))
      EXPECT_LE(BestScore, VectorFold::touchedVectors(S, F)) << F.str();
  }
}
