//===- examples/tuning_database.cpp - Offline tuning database ---------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The full Offsite workflow: build an offline database of tuned kernel
/// selections for a platform (zero kernel executions), persist it, then —
/// as an "application" would at run time — load it, look up the tuned
/// variant for the problem at hand, and integrate with it.
///
///   $ ./tuning_database
///
//===----------------------------------------------------------------------===//

#include "ode/Registry.h"
#include "offsite/Database.h"
#include "offsite/Offsite.h"
#include "support/Timer.h"

#include <cstdio>

using namespace ys;

int main() {
  MachineModel Machine = MachineModel::rome();
  ECMModel Model(Machine);
  OffsiteTuner Tuner(Model, Machine.CoresPerSocket);

  // 1. Offline: tune every method on the problems of interest.
  TuningDatabase Db;
  Heat3DIVP Problem(64);
  for (const ButcherTableau &TB :
       {ButcherTableau::heun2(), ButcherTableau::classicRK4(),
        ButcherTableau::fehlberg45()}) {
    std::vector<VariantPrediction> Ranked =
        Tuner.rank(Tuner.enumerateRK(TB, Problem), Problem);
    TuningRecord R;
    R.Machine = Machine.Name;
    R.Method = TB.Name;
    R.Problem = Problem.name();
    R.Dims = Problem.dims();
    R.Cores = Machine.CoresPerSocket;
    R.VariantName = Ranked.front().Variant.Name;
    R.PredictedSecondsPerStep = Ranked.front().SecondsPerStep;
    Db.insert(std::move(R));
  }
  std::printf("offline tuning produced %zu records (no kernel ran):\n%s\n",
              Db.size(), Db.serialize().c_str());

  // 2. "Application" side: load, query, integrate.
  auto LoadedOr = TuningDatabase::deserialize(Db.serialize());
  if (!LoadedOr) {
    std::printf("error: %s\n", LoadedOr.takeError().message().c_str());
    return 1;
  }
  const TuningRecord *Hit = LoadedOr->lookupNearest(
      Machine.Name, "rk4", "heat3d", {48, 48, 48},
      Machine.CoresPerSocket);
  if (!Hit) {
    std::printf("no tuned record found\n");
    return 1;
  }
  std::printf("query (rk4, heat3d, 48^3) -> %s\n",
              Hit->VariantName.c_str());

  // Recreate the variant from its recorded name (the production flow
  // would store the full config; names map 1:1 for this demo).
  Heat3DIVP Small(48);
  std::vector<ODEVariant> Vs =
      Tuner.enumerateRK(ButcherTableau::classicRK4(), Small);
  for (const ODEVariant &V : Vs)
    if (V.Name == Hit->VariantName) {
      double Sec = Tuner.measureSecondsPerStep(V, Small, 2, 2);
      std::printf("integrated with the tuned variant on this host: "
                  "%.3g s/step\n",
                  Sec);
      return 0;
    }
  std::printf("recorded variant not in today's enumeration\n");
  return 1;
}
