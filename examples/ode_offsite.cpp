//===- examples/ode_offsite.cpp - Offsite-style ODE variant tuning ----------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The Offsite workflow: enumerate implementation variants of an explicit
/// RK method on a PDE-derived IVP, rank them with YaskSite's ECM model
/// (no execution), then integrate with the selected variant and confirm
/// the numerics (all variants are bit-identical by construction).
///
///   $ ./ode_offsite
///
//===----------------------------------------------------------------------===//

#include "offsite/Offsite.h"

#include <cstdio>

using namespace ys;

int main() {
  Heat3DIVP Problem(64);
  ButcherTableau Method = ButcherTableau::fehlberg45();

  MachineModel Machine = MachineModel::cascadeLakeSP();
  ECMModel Model(Machine);
  OffsiteTuner Tuner(Model, Machine.CoresPerSocket);

  // 1. Enumerate and rank the implementation variants analytically.
  std::vector<ODEVariant> Variants = Tuner.enumerateRK(Method, Problem);
  std::vector<VariantPrediction> Ranked = Tuner.rank(Variants, Problem);
  std::printf("%s on %s, predicted for %s (%u cores):\n",
              Method.Name.c_str(), Problem.name().c_str(),
              Machine.Name.c_str(), Machine.CoresPerSocket);
  for (const VariantPrediction &P : Ranked)
    std::printf("  %-42s %2u sweeps/step  %8.3f ms/step\n",
                P.Variant.Name.c_str(), P.SweepsPerStep,
                P.SecondsPerStep * 1e3);

  // 2. Integrate with the winner.
  const ODEVariant &Winner = Ranked.front().Variant;
  ExplicitRKIntegrator Integ(Winner.Tableau, Winner.Variant, Winner.Config);
  Grid Y(Problem.dims(), Problem.halo(), Winner.Config.VectorFold);
  Problem.initialCondition(Y);
  RKWorkspace WS;
  double H = Problem.suggestedDt();
  Integ.integrate(Problem, 0.0, H, 20, Y, WS);

  // 3. Compare against the semi-discrete exact solution.
  Grid Exact(Problem.dims(), Problem.halo());
  Problem.exactSolution(20 * H, Exact);
  std::printf("\nintegrated 20 steps with '%s': max error vs exact "
              "semi-discrete solution = %.3e\n",
              Winner.Name.c_str(), Grid::maxAbsDiffInterior(Y, Exact));
  return 0;
}
