//===- examples/emit_kernel.cpp - Kernel source emission --------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Prints the YASK-style C++ source the code generator produces for a
/// stencil under a tuned configuration — the textual artifact of the
/// code-generation path (execution in this repo goes through the
/// equivalent KernelExecutor transformations).
///
///   $ ./emit_kernel
///
//===----------------------------------------------------------------------===//

#include "codegen/SourceEmitter.h"
#include "codegen/VectorFold.h"
#include "ecm/BlockingSelector.h"
#include "ecm/InCoreModel.h"
#include "stencil/StencilExpr.h"

#include <cstdio>

using namespace ys;

int main() {
  StencilSpec Spec = StencilSpec::star3d(2);
  MachineModel Machine = MachineModel::cascadeLakeSP();

  // Tune the configuration analytically, then emit the kernel.
  ECMModel Model(Machine);
  BlockingSelector Selector(Model);
  KernelConfig Base;
  Base.VectorFold = VectorFold::select(Spec, Machine);
  BlockingChoice Choice = Selector.selectAnalytic(
      Spec, {512, 512, 256}, Base, -1, Machine.CoresPerSocket);

  std::string Source =
      SourceEmitter::emitTranslationUnit(Spec, Choice.Config);
  std::fputs(Source.c_str(), stdout);

  // The in-core model's view of the same kernel, as pseudo-assembly.
  InCoreModel IC(Model.machine());
  std::printf("\n%s\n", IC.emitPseudoAsm(Spec, Choice.Config).c_str());

  // And the multi-step driver (wavefront form for demonstration).
  KernelConfig Wave = Choice.Config;
  Wave.WavefrontDepth = 4;
  std::fputs(SourceEmitter::emitTimeStepDriver(Spec, Wave).c_str(),
             stdout);

  // Also build a stencil from the expression DSL and emit it.
  Expr U = Expr::load(0, 0, 0, 0);
  Expr Lap = Expr::load(0, 1, 0, 0) + Expr::load(0, -1, 0, 0) +
             Expr::load(0, 0, 1, 0) + Expr::load(0, 0, -1, 0) +
             Expr::load(0, 0, 0, 1) + Expr::load(0, 0, 0, -1) -
             6.0 * U;
  auto SpecOr = (U + 0.1 * Lap).toSpec("jacobi-dsl");
  if (SpecOr) {
    std::printf("\n// --- from the expression DSL: %s ---\n",
                (U + 0.1 * Lap).str().c_str());
    std::fputs(
        SourceEmitter::emitKernel(*SpecOr, KernelConfig()).c_str(),
        stdout);
  }
  return 0;
}
