//===- examples/heat3d_tuning.cpp - Model-driven blocking selection --------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Selecting cache-blocking parameters for a wide stencil purely from the
/// model (the paper's headline capability), on both paper platforms, then
/// verifying the chosen configuration on this machine.
///
///   $ ./heat3d_tuning
///
//===----------------------------------------------------------------------===//

#include "ecm/BlockingSelector.h"
#include "tuner/MeasureHarness.h"

#include <cstdio>

using namespace ys;

int main() {
  StencilSpec Spec = StencilSpec::star3d(4); // Long-range star: needs LC
                                             // blocking on big grids.
  GridDims Dims{512, 512, 256};

  for (const MachineModel &Machine :
       {MachineModel::cascadeLakeSP(), MachineModel::rome()}) {
    ECMModel Model(Machine);
    BlockingSelector Selector(Model);
    KernelConfig Base;
    Base.VectorFold.X = static_cast<int>(Machine.Core.simdDoubles());

    BlockingChoice Analytic = Selector.selectAnalytic(
        Spec, Dims, Base, /*TargetLevel=*/-1, Machine.CoresPerSocket);
    BlockingChoice Best = Selector.selectBest(
        Spec, Dims, Base, /*EnableWavefront=*/true,
        Machine.CoresPerSocket);

    std::printf("%s (%u cores):\n", Machine.Name.c_str(),
                Machine.CoresPerSocket);
    std::printf("  analytic LC choice : block %s -> %.0f MLUP/s "
                "(saturated)\n",
                Analytic.Config.Block.str().c_str(),
                Analytic.Prediction.MLupsSaturated);
    std::printf("  model argmax       : %s -> %.0f MLUP/s "
                "(%u model evals, zero kernel runs)\n\n",
                Best.Config.str().c_str(),
                Best.Prediction.MLupsSaturated,
                Best.CandidatesEvaluated);
  }

  // Verify on this machine that the model's pick beats unblocked.
  GridDims HostDims{192, 192, 96};
  MachineModel Clx = MachineModel::cascadeLakeSP();
  ECMModel Model(Clx);
  BlockingSelector Selector(Model);
  BlockingChoice Pick =
      Selector.selectBest(Spec, HostDims, KernelConfig(), false);
  MeasureHarness Harness(Spec, HostDims, 3, 1);
  double Unblocked = Harness.measure(KernelConfig());
  double Picked = Harness.measure(Pick.Config);
  std::printf("host check (%s grid): unblocked %.0f MLUP/s, model pick "
              "(%s) %.0f MLUP/s\n",
              HostDims.str().c_str(), Unblocked,
              Pick.Config.Block.str().c_str(), Picked);
  return 0;
}
