//===- examples/quickstart.cpp - YaskSite reproduction quickstart ----------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: define a stencil, predict its performance analytically on a
/// target machine with the ECM model, run it with the kernel executor, and
/// cross-check the predicted memory traffic with the cache simulator.
///
///   $ ./quickstart
///
//===----------------------------------------------------------------------===//

#include "cachesim/StencilTrace.h"
#include "codegen/KernelExecutor.h"
#include "ecm/ECMModel.h"
#include "support/Timer.h"

#include <cstdio>

using namespace ys;

int main() {
  // 1. A stencil: the classic 7-point heat kernel.  Stencils can also be
  //    composed from expressions (see stencil/StencilExpr.h) or built
  //    point by point.
  StencilSpec Spec = StencilSpec::heat3d();
  std::printf("stencil %s: %s, radius %d, %u points, %u flops/LUP\n",
              Spec.name().c_str(), Spec.shapeName(), Spec.radius(),
              Spec.numPoints(), Spec.flopsPerLup());

  // 2. A target machine and the analytic prediction — no execution.
  MachineModel Machine = MachineModel::cascadeLakeSP();
  ECMModel Model(Machine);
  GridDims Dims{256, 256, 128};
  KernelConfig Config;
  Config.VectorFold.X = static_cast<int>(Machine.Core.simdDoubles());
  ECMPrediction P = Model.predict(Spec, Dims, Config);
  std::printf("\nECM prediction on %s for %s grid:\n  %s\n",
              Machine.Name.c_str(), Dims.str().c_str(), P.str().c_str());
  std::printf("  predicted memory traffic: %.1f B/LUP\n",
              P.Traffic.BytesPerLup.back());

  // 3. Run the kernel for real on this machine.
  Grid U(Dims, Spec.radius());
  Grid V(Dims, Spec.radius());
  Rng R(42);
  U.fillRandom(R);
  KernelExecutor Exec(Spec, KernelConfig());
  Timer T;
  Exec.runSweep({&U}, V);
  double Secs = T.seconds();
  std::printf("\nhost run: %.1f ms for one sweep = %.0f MLUP/s "
              "(this machine, scalar build)\n",
              Secs * 1e3, Dims.lups() / Secs / 1e6);

  // 4. Validate the traffic prediction with the cache simulator (the
  //    repo's stand-in for hardware counters).
  MachineModel Mini = Machine;
  for (CacheLevelModel &L : Mini.Caches)
    L.SizeBytes /= 8; // Scale down so a small trace reproduces the regime.
  CacheHierarchySim Sim = CacheHierarchySim::fromMachine(Mini);
  StencilTraceRunner Runner(Spec, {96, 96, 48}, KernelConfig());
  TraceTraffic Traffic = Runner.run(Sim, 2);
  std::printf("simulated memory traffic: %.1f B/LUP (predicted %.1f)\n",
              Traffic.BytesPerLup.back(), P.Traffic.BytesPerLup.back());
  return 0;
}
