//===- examples/distributed_heat.cpp - Distributed time stepping ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Heat diffusion time-stepped over a rank-decomposed domain (YASK's
/// multi-rank structure, simulated in-process), with the runtime
/// auto-tuner choosing the kernel configuration during the first steps.
/// The distributed result is verified bit-exactly against a monolithic
/// run.
///
///   $ ./distributed_heat
///
//===----------------------------------------------------------------------===//

#include "codegen/DomainDecomposition.h"
#include "stencil/GridNorms.h"
#include "support/Timer.h"
#include "tuner/OnlineTuner.h"

#include <cstdio>

using namespace ys;

int main() {
  StencilSpec Spec = StencilSpec::heat3d();
  GridDims Dims{96, 96, 96};
  const int Steps = 8;
  const unsigned Ranks = 4;

  Grid Global(Dims, 1);
  Rng R(2026);
  Global.fillRandom(R);

  // 1. Monolithic run with the online auto-tuner picking the config.
  Grid U(Dims, 1), Scratch(Dims, 1);
  U.copyInteriorFrom(Global);
  KernelConfig A;
  KernelConfig B;
  B.Block.Y = 16;
  KernelConfig C;
  C.WavefrontDepth = 2;
  C.Block.Z = 8;
  OnlineTuner Tuner(Spec, {A, B, C}, 2);
  Timer T1;
  OnlineTuner::Result Tuned = Tuner.run(U, Scratch, Steps);
  std::printf("online tuner tried %u configs in-run and locked '%s' "
              "(total %.3f s)\n",
              Tuned.TrialsRun, Tuned.Best.str().c_str(), T1.seconds());

  // 2. Distributed run over z-slab ranks: deep halos (2*radius planes
  //    buy 2 fused sweeps per exchange) with the staged exchange
  //    overlapped against interior compute on the pool.
  const int Halo = 2 * Spec.radius();
  DecomposedGrid DU(Dims, Ranks, Halo), DV(Dims, Ranks, Halo);
  DU.scatter(Global);
  Grid Zero(Dims, 1);
  DV.scatter(Zero);
  DistributedStepper Stepper(Spec, KernelConfig());
  Stepper.setExchangeMode(ExchangeMode::Overlapped);
  ThreadPool Pool(ThreadPool::defaultThreadCount());
  Timer T2;
  Stepper.runTimeSteps(DU, DV, Steps, &Pool);
  std::printf("distributed run over %u ranks: %.3f s, %llu overlapped "
              "exchange rounds for %d steps, halo traffic %.1f KiB/round\n",
              Ranks, T2.seconds(), Stepper.exchangeRounds(), Steps,
              static_cast<double>(DU.haloBytesExchanged() +
                                  DV.haloBytesExchanged()) /
                  static_cast<double>(Stepper.exchangeRounds()) / 1024.0);

  // 3. Bit-exact equivalence.
  Grid Result(Dims, 1);
  DU.gather(Result);
  double Diff = diffNormInf(U, Result);
  std::printf("max |monolithic - distributed| = %.1e (%s)\n", Diff,
              Diff == 0.0 ? "bit-exact" : "MISMATCH");
  std::printf("solution norms: inf=%.4f l2=%.4f\n", normInf(Result),
              normL2(Result));
  return Diff == 0.0 ? 0 : 1;
}
