#!/usr/bin/env sh
# Builds the tree under AddressSanitizer + UndefinedBehaviorSanitizer and
# runs the `verify`- and `jit`-labeled suites, so every enumerated kernel
# variant (folds, cache blocks, wavefronts, threads) is checked against
# the golden reference interpreter with full memory and UB checking —
# including the runtime-JIT backend, whose dlopen'd kernels run inside
# the instrumented process.  Part of the tier-1 quality gate for changes
# touching the executor, the grid layout, the JIT backend, or the
# verification harness itself.
#
# Usage: tools/run_sanitizer_checks.sh [build-dir]
set -eu

BUILD_DIR="${1:-build-asan}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DYS_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)"
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_stack_use_after_return=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  ctest --test-dir "$BUILD_DIR" -L 'verify|jit' --output-on-failure
