#!/usr/bin/env sh
# Builds the tree in Release mode and runs the benchmark suite, emitting
# machine-readable BENCH_*.json result files (JSON lines, one flat object
# per measurement) into the build directory:
#
#   BENCH_micro.json   scalar-vs-folded compiled-plan kernels per SIMD
#                      dispatch target, plus plan-vs-JIT GLUP/s rows per
#                      fold when a system compiler is available
#                      (bench_micro_kernels --ys-compare)
#
#   BENCH_cachesim.json  full-vs-sampled cache-simulation wall time and
#                        memory-traffic delta across the E14 grid-size
#                        staircase (bench_e4_layer_conditions --ys-json)
#
#   BENCH_schedules.json  predicted and simulated memory traffic per
#                         temporal schedule (wavefront / diamond /
#                         deep-temporal) and fusion depth, plus host
#                         wall-clock rows (bench_e7_wavefront --ys-json)
#
#   BENCH_distributed.json  rank-decomposed stepping: bit-identity and
#                           exchange-round amortization per schedule x
#                           rank count, plus overlapped-vs-serialized
#                           exchange wall clock with the overlap speedup
#                           (bench_e15_distributed --ys-json)
#
# The scalar-vs-folded comparison exits non-zero when the best folded
# kernel falls below 0.9x scalar throughput on any target, and the
# cache-simulation rows gate the sampled fast mode (>= 10x wall speedup
# on the largest grid, memory B/LUP within 10%, gray-zone fallback), so
# this script doubles as the perf acceptance gate.
#
# Usage: tools/run_bench_suite.sh [build-dir]
set -eu

BUILD_DIR="${1:-build-release}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)"

cd "$BUILD_DIR"
./bench/bench_micro_kernels --ys-compare --ys-json=BENCH_micro.json
./bench/bench_e4_layer_conditions --ys-json=BENCH_cachesim.json
./bench/bench_e7_wavefront --ys-json=BENCH_schedules.json
./bench/bench_e15_distributed --ys-json=BENCH_distributed.json

echo "bench results:"
ls -l BENCH_*.json
