#!/usr/bin/env sh
# Repo-hygiene guard: fails when build artifacts are tracked by git.
# A committed build tree (build/, build-tsan/, Testing/, stray object
# files) bloats every clone and goes stale immediately; this check runs
# under ctest so a regression is caught by the tier-1 gate.
#
# Usage: tools/check_no_build_artifacts.sh [repo-root]
set -eu

REPO_ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$REPO_ROOT"

if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "check_no_build_artifacts: not a git work tree; nothing to check."
  exit 0
fi

# Tracked files under any build*/ or Testing/ directory, or with artifact
# extensions anywhere in the tree.
OFFENDERS="$(git ls-files | grep -E \
  '(^|/)(build[^/]*|Testing)/|\.(o|obj|a|so|bin|exe)$' || true)"

if [ -n "$OFFENDERS" ]; then
  echo "error: build artifacts are tracked by git:" >&2
  echo "$OFFENDERS" | head -20 >&2
  N="$(echo "$OFFENDERS" | wc -l)"
  [ "$N" -gt 20 ] && echo "... and $((N - 20)) more" >&2
  echo "Remove them with: git rm -r --cached <path> (see .gitignore)" >&2
  exit 1
fi

echo "check_no_build_artifacts: OK (no tracked build artifacts)"
