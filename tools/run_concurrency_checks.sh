#!/usr/bin/env sh
# Builds the tree under ThreadSanitizer and runs the concurrency-labeled
# tests (thread pool scheduler, parallel executor, tuning service, and
# the overlapped halo exchange that interleaves unpack copies with
# interior compute).  Part of the tier-1 quality gate for changes
# touching the threading layer.
#
# Usage: tools/run_concurrency_checks.sh [build-dir]
set -eu

BUILD_DIR="${1:-build-tsan}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DYS_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)"
ctest --test-dir "$BUILD_DIR" -L concurrency --output-on-failure
