//===- tools/yasksite.cpp - yasksite command-line tool ----------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <cstdio>

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  std::string Out;
  int Code = ys::runDriver(Args, Out);
  std::fputs(Out.c_str(), Code == 0 ? stdout : stderr);
  return Code;
}
