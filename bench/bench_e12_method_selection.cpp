//===- bench/bench_e12_method_selection.cpp - E12: method selection ---------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E12 (Offsite's end goal): which explicit method advances simulated time
/// fastest?  Combines the linear stability limit of each method (largest
/// stable dt against the problem's spectral bound) with the ECM-predicted
/// cost of its best implementation variant: cost per simulated second =
/// (time per step) / dt_max.  All analytic — zero executions — per paper
/// platform; the winner is the recommended solver/kernel pair.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ode/Stability.h"
#include "offsite/Offsite.h"
#include "support/Table.h"

using namespace ys;

int main() {
  ysbench::banner("E12", "Analytic method selection: cost per simulated "
                         "second",
                  "dt_max from the stability function x spectral bound; "
                  "step cost from the ECM-ranked best variant.");

  Heat3DIVP Problem(256);
  std::vector<ButcherTableau> Methods = {
      ButcherTableau::explicitEuler(), ButcherTableau::heun2(),
      ButcherTableau::kutta3(),        ButcherTableau::classicRK4(),
      ButcherTableau::fehlberg45(),    ButcherTableau::dormandPrince54()};

  for (const MachineModel &M : ysbench::paperMachines()) {
    ECMModel Model(M);
    OffsiteTuner Tuner(Model, M.CoresPerSocket);
    std::printf("\n-- %s, %s N=256 (socket-level predictions) --\n",
                M.Name.c_str(), Problem.name().c_str());
    Table T({"method", "order", "dt_max", "best variant", "s/step",
             "s per sim-second", "rank"});

    struct Row {
      std::string Method;
      unsigned Order;
      double DtMax;
      std::string Variant;
      double SecPerStep;
      double SecPerSimSecond;
    };
    std::vector<Row> Rows;
    for (const ButcherTableau &TB : Methods) {
      double DtMax = maxStableTimeStep(TB, Problem.rhsStencil());
      std::vector<ODEVariant> Vs = Tuner.enumerateRK(TB, Problem);
      std::vector<VariantPrediction> Ranked = Tuner.rank(Vs, Problem);
      Row R;
      R.Method = TB.Name;
      R.Order = TB.Order;
      R.DtMax = DtMax;
      R.Variant = Ranked.front().Variant.Name;
      R.SecPerStep = Ranked.front().SecondsPerStep;
      R.SecPerSimSecond = R.SecPerStep / DtMax;
      Rows.push_back(R);
    }
    for (const Row &R : Rows) {
      unsigned Rank = 1;
      for (const Row &O : Rows)
        if (O.SecPerSimSecond < R.SecPerSimSecond)
          ++Rank;
      T.addRow({R.Method, format("%u", R.Order),
                format("%.3g", R.DtMax), R.Variant,
                ysbench::seconds(R.SecPerStep),
                ysbench::seconds(R.SecPerSimSecond), format("%u", Rank)});
    }
    T.print();
  }

  std::printf("\nStability limits (negative real axis):\n");
  Table TS({"method", "stages", "order", "|z| limit", "limit/stage"});
  for (const ButcherTableau &TB : Methods) {
    double L = realAxisStabilityLimit(TB);
    TS.addRow({TB.Name, format("%u", TB.Stages), format("%u", TB.Order),
               format("%.3f", L), format("%.3f", L / TB.Stages)});
  }
  TS.print();
  return 0;
}
