//===- bench/bench_e13_fusion.cpp - E13: bundle fusion ablation -------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E13: sweep fusion in the solution layer — the mechanism behind
/// Offsite's fused ODE variants, exercised end to end through the DSL
/// front end.  Compares the fused and unfused execution plans of
/// multi-equation stencil programs: sweep counts, predicted time on the
/// paper platforms, and host wall clock.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "solution/StencilSolution.h"
#include "support/Table.h"
#include "support/Timer.h"

using namespace ys;

namespace {

struct Program {
  const char *Name;
  const char *Source;
};

const Program Programs[] = {
    {"rk2-like",
     R"(stencil rk2like {
          grid u, k1, arg, k2, unew;
          k1[x,y,z]   = u[x+1,y,z] + u[x-1,y,z] + u[x,y+1,z] + u[x,y-1,z]
                      + u[x,y,z+1] + u[x,y,z-1] - 6 * u[x,y,z];
          arg[x,y,z]  = u[x,y,z] + 0.001 * k1[x,y,z];
          k2[x,y,z]   = arg[x+1,y,z] + arg[x-1,y,z] + arg[x,y+1,z]
                      + arg[x,y-1,z] + arg[x,y,z+1] + arg[x,y,z-1]
                      - 6 * arg[x,y,z];
          unew[x,y,z] = u[x,y,z] + 0.0005 * k1[x,y,z] + 0.0005 * k2[x,y,z];
        })"},
    {"gradient+mag",
     R"(stencil gradmag {
          grid u, gx, gy, gz;
          gx[x,y,z] = u[x+1,y,z] - u[x-1,y,z];
          gy[x,y,z] = u[x,y+1,z] - u[x,y-1,z];
          gz[x,y,z] = u[x,y,z+1] - u[x,y,z-1];
        })"},
};

} // namespace

int main() {
  ysbench::banner("E13", "Sweep fusion in multi-equation stencil programs",
                  "Fused vs unfused plans of the same DSL program; "
                  "predictions at socket occupancy.");

  GridDims Dims{96, 96, 96};
  MachineModel Clx = MachineModel::cascadeLakeSP();
  ECMModel Model(Clx);

  Table T({"program", "plan", "sweeps", "pred s/step (CLX, 20c)",
           "host s/step", "host time vs fused"});
  for (const Program &P : Programs) {
    double HostFused = 0;
    for (bool Fused : {true, false}) {
      auto SolOr =
          StencilSolution::fromDslSource(P.Source, Dims, {}, Fused);
      if (!SolOr) {
        std::printf("error: %s\n", SolOr.takeError().message().c_str());
        return 1;
      }
      StencilSolution &Sol = *SolOr;
      Rng R(1);
      Sol.grid(0).fillRandom(R);
      Sol.run(); // Warm-up.
      Timer Tm;
      Sol.runSteps(3);
      double HostSec = Tm.seconds() / 3;
      if (Fused)
        HostFused = HostSec;
      double Pred = Sol.predictSecondsPerStep(Model, 20);
      T.addRow({P.Name, Fused ? "fused" : "unfused",
                format("%zu", Sol.plan().size()),
                ysbench::seconds(Pred), ysbench::seconds(HostSec),
                Fused ? std::string("1.00x")
                      : format("%.2fx", HostSec / HostFused)});
    }
  }
  T.print();

  std::printf("\nPlan detail (rk2-like, fused):\n");
  auto SolOr = StencilSolution::fromDslSource(Programs[0].Source, Dims);
  if (SolOr)
    std::printf("%s", SolOr->describePlan().c_str());
  return 0;
}
