//===- bench/bench_e1_stencil_suite.cpp - E1: stencil test suite -----------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E1 (paper Table 1 analogue): characteristics of the stencil test suite —
/// shape, radius, point count, flops/LUP, stream structure, minimal
/// streaming traffic, and the vector fold YaskSite selects per platform.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "codegen/VectorFold.h"
#include "support/Table.h"

using namespace ys;

int main() {
  ysbench::banner("E1", "Stencil test suite characteristics (Table 1)",
                  "Streaming B/LUP assumes plane reuse (1 load stream) + "
                  "store + write-allocate.");

  MachineModel Clx = MachineModel::cascadeLakeSP();
  MachineModel Rome = MachineModel::rome();

  Table T({"stencil", "shape", "radius", "points", "flops/LUP", "layers",
           "z-planes", "stream B/LUP", "fold CLX", "fold Rome"});
  for (const StencilSpec &S : ysbench::paperStencilSuite()) {
    StreamCounts C = S.streams();
    double StreamBytes = 8.0 * C.Grids + 16.0;
    Fold FoldClx = VectorFold::select(S, Clx);
    Fold FoldRome = VectorFold::select(S, Rome);
    T.addRow({S.name(), S.shapeName(), format("%d", S.radius()),
              format("%u", S.numPoints()), format("%u", S.flopsPerLup()),
              format("%u", C.Layers), format("%u", C.ZPlanes),
              format("%.0f", StreamBytes), FoldClx.str(), FoldRome.str()});
  }
  T.print();
  return 0;
}
