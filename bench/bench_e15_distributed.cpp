//===- bench/bench_e15_distributed.cpp - E15: rank decomposition ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E15: domain decomposition (YASK's multi-rank substrate, simulated
/// in-process).  Reports the halo-exchange payload per step as the rank
/// count grows, its share of the sweep's memory traffic, and verifies the
/// distributed result stays bit-identical to the monolithic run.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "codegen/DomainDecomposition.h"
#include "support/Table.h"
#include "support/Timer.h"

using namespace ys;

int main() {
  ysbench::banner("E15", "Domain decomposition and halo exchange",
                  "z-slab ranks; halo share = exchange payload over the "
                  "sweep's streaming traffic (24 B/LUP).");

  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{96, 96, 96};
  const int Steps = 4;

  Grid Global(Dims, 1);
  Rng R(5);
  Global.fillRandom(R);

  // Monolithic reference for the equivalence column.
  Grid URef(Dims, 1), Scratch(Dims, 1);
  URef.copyInteriorFrom(Global);
  KernelExecutor Exec(S, KernelConfig());
  Exec.runTimeSteps(URef, Scratch, Steps);

  Table T({"ranks", "halo B/step", "halo share", "host s/step",
           "max |diff| vs monolithic"});
  for (unsigned Ranks : {1u, 2u, 4u, 8u}) {
    DecomposedGrid U(Dims, Ranks, 1), V(Dims, Ranks, 1);
    U.scatter(Global);
    Grid Zero(Dims, 1);
    V.scatter(Zero);
    DistributedStepper Stepper(S, KernelConfig());
    Timer Tm;
    Stepper.runTimeSteps(U, V, Steps);
    double Secs = Tm.seconds() / Steps;
    Grid Result(Dims, 1);
    U.gather(Result);

    double HaloPerStep =
        static_cast<double>(U.haloBytesExchanged() +
                            V.haloBytesExchanged()) /
        Steps;
    double SweepBytes = 24.0 * static_cast<double>(Dims.lups());
    T.addRow({format("%u", Ranks), humanBytes(
                  static_cast<unsigned long long>(HaloPerStep)),
              format("%.2f%%", 100.0 * HaloPerStep / SweepBytes),
              ysbench::seconds(Secs),
              format("%.1e", Grid::maxAbsDiffInterior(URef, Result))});
  }
  T.print();

  std::printf("\nWeak-scaling view (per-rank slab of 96x96x24, halo "
              "payload per rank per step is constant):\n");
  Table TW({"ranks", "global Nz", "halo B/step/rank"});
  for (unsigned Ranks : {2u, 4u, 8u}) {
    GridDims WDims{96, 96, static_cast<long>(24 * Ranks)};
    DecomposedGrid U(WDims, Ranks, 1), V(WDims, Ranks, 1);
    Grid G(WDims, 1);
    U.scatter(G);
    V.scatter(G);
    DistributedStepper Stepper(S, KernelConfig());
    Stepper.runTimeSteps(U, V, 1);
    double PerRank =
        static_cast<double>(U.haloBytesExchanged()) / Ranks;
    TW.addRow({format("%u", Ranks), format("%ld", WDims.Nz),
               humanBytes(static_cast<unsigned long long>(PerRank))});
  }
  TW.print();
  return 0;
}
