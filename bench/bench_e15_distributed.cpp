//===- bench/bench_e15_distributed.cpp - E15: rank decomposition ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E15: domain decomposition with overlapped halo exchange (YASK's
/// multi-rank substrate, simulated in-process).  Three views:
///
///  * equivalence: distributed stepping — serial and overlapped exchange,
///    plain and temporal schedules, deep halos — must be bit-identical to
///    the monolithic run on the owned planes;
///  * accounting: exchange rounds amortize with halo depth
///    (ceil(steps / (halo/radius)) rounds), and the byte counter scales
///    with ranks and rounds;
///  * overlap: on a communication-heavy configuration the staged
///    memcpy exchange overlapped with interior compute beats the
///    serialized exchange-then-compute baseline at >= 2 ranks.
///
/// --ys-smoke        shrunk run gating all three (the `distributed` ctest
///                   label).
/// --ys-json[=PATH]  emit one JSON-lines row per case to PATH (default
///                   BENCH_distributed.json).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "codegen/DomainDecomposition.h"
#include "ecm/ECMModel.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstring>

using namespace ys;

namespace {

struct CaseRow {
  unsigned Ranks = 1;
  Schedule Sched = Schedule::Sweep;
  int Depth = 1;
  int HaloDepth = 1;
  ExchangeMode Mode = ExchangeMode::Overlapped;
  unsigned long long Rounds = 0;
  unsigned long long HaloBytes = 0;
  double SecondsPerStep = 0;
  double MaxDiff = 0;
};

const char *modeName(ExchangeMode M) {
  return M == ExchangeMode::Serial ? "serial" : "overlapped";
}

KernelConfig caseConfig(Schedule Sched, int Depth, unsigned Ranks,
                        unsigned Threads) {
  KernelConfig C;
  C.Sched = Sched;
  C.WavefrontDepth = Depth;
  C.Ranks = Ranks;
  C.Threads = Threads;
  return C;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  bool WriteJson = false;
  std::string JsonPath = "BENCH_distributed.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--ys-smoke") == 0)
      Smoke = true;
    else if (std::strcmp(argv[I], "--ys-json") == 0)
      WriteJson = true;
    else if (std::strncmp(argv[I], "--ys-json=", 10) == 0) {
      WriteJson = true;
      JsonPath = argv[I] + 10;
    }
  }

  ysbench::banner("E15", "Distributed stepping with overlapped halo "
                         "exchange",
                  "z-slab ranks in-process; overlapped = staged memcpy "
                  "exchange concurrent with interior trapezoids.");

  StencilSpec S = StencilSpec::heat3d();
  const long R = std::max(1, S.radius());
  GridDims Dims = Smoke ? GridDims{48, 48, 48} : GridDims{96, 96, 96};
  const int Steps = 4;
  unsigned Threads = std::max(2u, std::min(4u,
      ThreadPool::defaultThreadCount()));
  ThreadPool Pool(Threads);

  Grid Global(Dims, 1);
  Rng Rand(5);
  Global.fillRandom(Rand);

  // -- Equivalence & accounting: ranks x schedules x exchange modes ------
  struct SchedCase {
    Schedule Sched;
    int Depth;
  };
  std::vector<SchedCase> Scheds = {{Schedule::Sweep, 1},
                                   {Schedule::Wavefront, 2},
                                   {Schedule::DeepTemporal, 2}};
  std::vector<unsigned> RankCounts = Smoke ? std::vector<unsigned>{2, 3}
                                           : std::vector<unsigned>{2, 3, 8};

  std::vector<CaseRow> Rows;
  Table T({"ranks", "schedule", "halo", "mode", "rounds", "halo B/step",
           "host s/step", "max |diff|"});
  int Failures = 0;
  for (const SchedCase &SC : Scheds) {
    // Monolithic oracle for this schedule: same stepping, one rank.
    Grid URef(Dims, 1), Scratch(Dims, 1);
    URef.copyInteriorFrom(Global);
    Scratch.copyHaloFrom(URef);
    KernelConfig MonoC = caseConfig(SC.Sched, SC.Depth, 1, 1);
    KernelExecutor Mono(S, MonoC);
    Mono.runTimeSteps(URef, Scratch, Steps);

    for (unsigned Ranks : RankCounts)
      for (ExchangeMode Mode :
           {ExchangeMode::Serial, ExchangeMode::Overlapped}) {
        int Halo = static_cast<int>(R) * SC.Depth;
        KernelConfig C = caseConfig(SC.Sched, SC.Depth, Ranks, Threads);
        DecomposedGrid U(Dims, Ranks, Halo), V(Dims, Ranks, Halo);
        U.scatter(Global);
        V.scatter(Global);
        DistributedStepper Stepper(S, C);
        Stepper.setExchangeMode(Mode);
        Timer Tm;
        Stepper.runTimeSteps(U, V, Steps, &Pool);
        double Secs = Tm.seconds() / Steps;
        Grid Result(Dims, 1);
        U.gather(Result);

        CaseRow Row;
        Row.Ranks = Ranks;
        Row.Sched = SC.Sched;
        Row.Depth = SC.Depth;
        Row.HaloDepth = Halo;
        Row.Mode = Mode;
        Row.Rounds = Stepper.exchangeRounds();
        Row.HaloBytes = U.haloBytesExchanged() / Steps;
        Row.SecondsPerStep = Secs;
        Row.MaxDiff = Grid::maxAbsDiffInterior(URef, Result);
        Rows.push_back(Row);

        T.addRow({format("%u", Ranks), scheduleName(SC.Sched),
                  format("%d", Halo), modeName(Mode),
                  format("%llu", Row.Rounds), humanBytes(Row.HaloBytes),
                  ysbench::seconds(Secs), format("%.1e", Row.MaxDiff)});

        // Gate: bit-identical owned planes, every mode and schedule.
        if (Row.MaxDiff != 0.0) {
          std::fprintf(stderr,
                       "GATE: ranks=%u %s %s diverges from monolithic "
                       "(max |diff| %.3e)\n",
                       Ranks, scheduleName(SC.Sched), modeName(Mode),
                       Row.MaxDiff);
          ++Failures;
        }
        // Gate: deep halos amortize — one exchange per macro step of
        // halo/radius fused sweeps.
        int K = Stepper.stepsPerExchange(Halo);
        unsigned long long Expect =
            static_cast<unsigned long long>((Steps + K - 1) / K);
        if (Row.Rounds != Expect) {
          std::fprintf(stderr,
                       "GATE: ranks=%u %s %s: %llu exchange rounds, "
                       "expected %llu for %d steps at depth %d\n",
                       Ranks, scheduleName(SC.Sched), modeName(Mode),
                       Row.Rounds, Expect, Steps, K);
          ++Failures;
        }
        if (Row.HaloBytes == 0) {
          std::fprintf(stderr,
                       "GATE: ranks=%u %s %s exchanged zero halo bytes\n",
                       Ranks, scheduleName(SC.Sched), modeName(Mode));
          ++Failures;
        }
      }
  }
  T.print();

  // -- Overlap: staged+overlapped vs serialized exchange-then-compute ----
  // Communication-heavy shape: deep halo on a short z extent maximizes
  // the exchanged share, which is exactly where overlapping pays.
  GridDims CommDims = Smoke ? GridDims{64, 64, 32} : GridDims{128, 128, 48};
  const int CommHalo = static_cast<int>(2 * R);
  const int CommSteps = Smoke ? 4 : 8;
  std::printf("\n-- Overlap vs serialized exchange (grid %s, halo %d, "
              "%d steps, %u threads) --\n",
              CommDims.str().c_str(), CommHalo, CommSteps, Threads);
  Table TO({"ranks", "serial s/step", "overlapped s/step", "speedup"});
  struct OverlapRow {
    unsigned Ranks;
    double SerialSec;
    double OverlapSec;
  };
  std::vector<OverlapRow> Overlaps;
  for (unsigned Ranks : {2u, 4u}) {
    if (static_cast<long>(Ranks) * CommHalo > CommDims.Nz)
      continue;
    KernelConfig C = caseConfig(Schedule::Wavefront, 2, Ranks, Threads);
    Grid CommInit(CommDims, 1);
    Rng CR(7);
    CommInit.fillRandom(CR);
    double Secs[2] = {0, 0};
    for (ExchangeMode Mode :
         {ExchangeMode::Serial, ExchangeMode::Overlapped}) {
      DecomposedGrid U(CommDims, Ranks, CommHalo),
          V(CommDims, Ranks, CommHalo);
      U.scatter(CommInit);
      V.scatter(CommInit);
      DistributedStepper Stepper(S, C);
      Stepper.setExchangeMode(Mode);
      // Warm-up builds the per-rank kernel plans outside the timing.
      Stepper.runTimeSteps(U, V, CommSteps, &Pool);
      TimingStats Stats = measureSeconds(
          [&] { Stepper.runTimeSteps(U, V, CommSteps, &Pool); }, 3);
      Secs[Mode == ExchangeMode::Overlapped] = Stats.Median / CommSteps;
    }
    Overlaps.push_back({Ranks, Secs[0], Secs[1]});
    TO.addRow({format("%u", Ranks), ysbench::seconds(Secs[0]),
               ysbench::seconds(Secs[1]),
               format("%.2fx", Secs[0] / Secs[1])});
  }
  TO.print();

  // Gate: the overlapped path must beat the serialized baseline wherever
  // at least two ranks exchange (the element-wise serial reference also
  // copies the x/y halo ring, so staging + overlap has a double edge).
  for (const OverlapRow &O : Overlaps)
    if (O.OverlapSec > O.SerialSec) {
      std::fprintf(stderr,
                   "GATE: ranks=%u overlapped %.3g s/step slower than "
                   "serialized %.3g s/step\n",
                   O.Ranks, O.OverlapSec, O.SerialSec);
      ++Failures;
    }

  // Model view: the communication-aware ECM term for the same shape.
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  std::printf("\n-- Communication-aware ECM term (%s) --\n",
              CommDims.str().c_str());
  for (unsigned Ranks : {1u, 2u, 4u}) {
    KernelConfig C = caseConfig(Schedule::Wavefront, 2, Ranks, Threads);
    ECMPrediction P = Model.predict(S, CommDims, C);
    std::printf("ranks=%u: %s\n", Ranks, P.str().c_str());
  }

  if (WriteJson) {
    ysbench::JsonLinesWriter Json(JsonPath);
    for (const CaseRow &Row : Rows) {
      JsonObjectWriter Obj;
      Obj.field("bench", "distributed")
          .field("stencil", S.name())
          .field("grid", Dims.str())
          .field("ranks", static_cast<long>(Row.Ranks))
          .field("schedule", scheduleName(Row.Sched))
          .field("depth", static_cast<long>(Row.Depth))
          .field("halo", static_cast<long>(Row.HaloDepth))
          .field("mode", modeName(Row.Mode))
          .field("exchange_rounds",
                 static_cast<unsigned long long>(Row.Rounds))
          .field("halo_bytes_per_step",
                 static_cast<unsigned long long>(Row.HaloBytes))
          .field("seconds_per_step", Row.SecondsPerStep)
          .field("max_diff", Row.MaxDiff);
      Json.write(Obj);
    }
    for (const OverlapRow &O : Overlaps) {
      JsonObjectWriter Obj;
      Obj.field("bench", "distributed_overlap")
          .field("stencil", S.name())
          .field("grid", CommDims.str())
          .field("ranks", static_cast<long>(O.Ranks))
          .field("halo", static_cast<long>(CommHalo))
          .field("serial_seconds_per_step", O.SerialSec)
          .field("overlapped_seconds_per_step", O.OverlapSec)
          .field("overlap_speedup", O.SerialSec / O.OverlapSec);
      Json.write(Obj);
    }
  }

  if (Smoke)
    std::printf("smoke: %s\n", Failures ? "FAIL" : "ok");
  return Failures ? 1 : 0;
}
