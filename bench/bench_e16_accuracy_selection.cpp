//===- bench/bench_e16_accuracy_selection.cpp - E16: accuracy budget --------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E16: method selection under an accuracy constraint — Offsite's real
/// decision problem.  For each explicit method, the global error constant
/// is calibrated empirically on a small Heat2D instance (two runs against
/// the exact semi-discrete solution give the observed order and
/// constant), then the step size meeting each error target, the number of
/// steps for a fixed horizon, and the ECM-predicted cost per step of the
/// method's best variant combine into an analytic time-to-solution.
/// The classic crossover appears: low-order methods win loose tolerances,
/// high-order methods win tight ones.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ode/IVP.h"
#include "offsite/Offsite.h"
#include "support/Table.h"

#include <cmath>

using namespace ys;

namespace {

/// Empirical error model err(dt) ~= C * dt^p on Heat2D.
struct ErrorModel {
  double C = 0;
  double P = 0;
};

ErrorModel calibrate(const ButcherTableau &TB) {
  Heat2DIVP Problem(10);
  double TEnd = Problem.suggestedDt() * 32;
  auto ErrorAt = [&](int Steps) {
    Grid Y(Problem.dims(), Problem.halo());
    Problem.initialCondition(Y);
    ExplicitRKIntegrator Integ(TB, RKVariant::StageSeparate);
    RKWorkspace WS;
    Integ.integrate(Problem, 0.0, TEnd / Steps, Steps, Y, WS);
    Grid Exact(Problem.dims(), Problem.halo());
    Problem.exactSolution(TEnd, Exact);
    return Grid::maxAbsDiffInterior(Y, Exact);
  };
  double E1 = ErrorAt(32), E2 = ErrorAt(64);
  ErrorModel M;
  double Dt1 = TEnd / 32;
  M.P = std::log2(E1 / E2);
  M.C = E1 / std::pow(Dt1, M.P);
  return M;
}

} // namespace

int main() {
  ysbench::banner("E16", "Method selection under accuracy constraints",
                  "Error constants calibrated on Heat2D; step costs from "
                  "the ECM-ranked best variant on the CLX model (20 "
                  "cores), horizon T = 0.01 on heat3d 128^3.");

  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  OffsiteTuner Tuner(Model, M.CoresPerSocket);
  Heat3DIVP Target(128);
  const double Horizon = 0.01;
  // Stability ceiling for the target problem (dt may not exceed it no
  // matter how loose the tolerance).
  std::vector<ButcherTableau> Methods = {
      ButcherTableau::explicitEuler(), ButcherTableau::heun2(),
      ButcherTableau::classicRK4(), ButcherTableau::dormandPrince54()};

  struct Calibrated {
    ButcherTableau TB;
    ErrorModel Err;
    double SecPerStep;
  };
  std::vector<Calibrated> Cal;
  for (const ButcherTableau &TB : Methods) {
    Calibrated C{TB, calibrate(TB), 0};
    std::vector<VariantPrediction> Ranked =
        Tuner.rank(Tuner.enumerateRK(TB, Target), Target);
    C.SecPerStep = Ranked.front().SecondsPerStep;
    Cal.push_back(C);
  }

  std::printf("\nCalibrated error models (err = C * dt^p):\n");
  Table TC({"method", "order (nominal)", "order (observed)", "C"});
  for (const Calibrated &C : Cal)
    TC.addRow({C.TB.Name, format("%u", C.TB.Order),
               format("%.2f", C.Err.P), format("%.3g", C.Err.C)});
  TC.print();

  double DtStab = Target.suggestedDt(); // Conservative stability bound.
  for (double Tol : {1e-3, 1e-6, 1e-9, 1e-12}) {
    std::printf("\n-- tolerance %.0e --\n", Tol);
    Table T({"method", "dt(tol)", "dt used", "steps", "pred s/step",
             "time to solution", "rank"});
    struct Row {
      std::string Name;
      double Dt, DtUsed, Seconds;
      long Steps;
      double SecPerStep;
    };
    std::vector<Row> Rows;
    for (const Calibrated &C : Cal) {
      double Dt = std::pow(Tol / C.Err.C, 1.0 / C.Err.P);
      double DtUsed = std::min(Dt, DtStab);
      long Steps = static_cast<long>(std::ceil(Horizon / DtUsed));
      Rows.push_back({C.TB.Name, Dt, DtUsed,
                      Steps * C.SecPerStep, Steps, C.SecPerStep});
    }
    for (const Row &R : Rows) {
      unsigned Rank = 1;
      for (const Row &O : Rows)
        if (O.Seconds < R.Seconds)
          ++Rank;
      T.addRow({R.Name, format("%.2e", R.Dt), format("%.2e", R.DtUsed),
                format("%ld", R.Steps), ysbench::seconds(R.SecPerStep),
                ysbench::seconds(R.Seconds), format("%u", Rank)});
    }
    T.print();
  }
  return 0;
}
