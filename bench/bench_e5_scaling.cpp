//===- bench/bench_e5_scaling.cpp - E5: multicore saturation ----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E5 (paper Fig.: multicore scaling): predicted performance vs core count
/// with the ECM saturation model on both paper platforms.  The container
/// is single-core, so the multicore curve is purely analytic (the paper's
/// own premise: predict without running); the host single-thread number
/// anchors the executor side.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cachesim/MultiCoreSim.h"
#include "ecm/ECMModel.h"
#include "ecm/LayerCondition.h"
#include "support/Table.h"
#include "tuner/MeasureHarness.h"

using namespace ys;

int main() {
  ysbench::banner("E5", "Multicore scaling and bandwidth saturation",
                  "Linear scaling up to n_sat = ceil(TECM/TMem), then "
                  "memory-bandwidth bound.");

  GridDims Dims{512, 512, 256};
  std::vector<StencilSpec> Suite = {StencilSpec::heat3d(),
                                    StencilSpec::box3d(2)};

  for (const MachineModel &M : ysbench::paperMachines()) {
    ECMModel Model(M);
    std::printf("\n-- %s --\n", M.Name.c_str());
    for (const StencilSpec &S : Suite) {
      KernelConfig C;
      C.VectorFold.X = static_cast<int>(M.Core.simdDoubles());
      // Shared-cache pressure grows with active cores; model at full
      // occupancy for the curve.
      ECMPrediction P = Model.predict(S, Dims, C, M.CoresPerSocket);
      std::printf("%s: %s\n", S.name().c_str(), P.str().c_str());
      Table T({"cores", "pred MLUP/s", "regime"});
      for (unsigned Cores :
           {1u, 2u, 4u, 8u, P.SaturationCores, M.CoresPerSocket}) {
        if (Cores == 0 || Cores > M.CoresPerSocket)
          continue;
        double Perf = P.mlupsAtCores(Cores);
        const char *Regime =
            Cores >= P.SaturationCores ? "bandwidth-bound" : "scalable";
        T.addRow({format("%u", Cores), ysbench::mlups(Perf), Regime});
      }
      T.print();
    }
  }

  // Shared-cache pressure: the LC derating vs the multicore simulator.
  std::printf("\n-- Shared-cache pressure (scaled CLX, star3d-r2, "
              "48x48x32) --\n");
  {
    MachineModel Tiny = MachineModel::cascadeLakeSP();
    Tiny.Caches[0].SizeBytes = 8 * 1024;
    Tiny.Caches[1].SizeBytes = 32 * 1024;
    Tiny.Caches[2].SizeBytes = 512 * 1024;
    Tiny.Caches[2].SharingCores = 4;
    StencilSpec S = StencilSpec::star3d(2);
    GridDims SmallDims{48, 48, 32};
    LayerConditionAnalysis LC(Tiny);
    Table TP({"active cores", "pred mem B/LUP", "sim mem B/LUP"});
    for (unsigned Cores : {1u, 2u, 4u}) {
      double Pred =
          LC.analyze(S, SmallDims, KernelConfig(), Cores).BytesPerLup.back();
      MultiCoreTraffic Sim = runMultiCoreStencilTrace(
          Tiny, Cores, S, SmallDims, KernelConfig(), 2);
      TP.addRow({format("%u", Cores), format("%.1f", Pred),
                 format("%.1f", Sim.MemBytesPerLup)});
    }
    TP.print();
  }

  std::printf("\nHost anchor (single thread, this machine):\n");
  Table T({"stencil", "host MLUP/s"});
  for (const StencilSpec &S : Suite) {
    MeasureHarness H(S, {128, 128, 64}, 2, 1);
    T.addRow({S.name(), ysbench::mlups(H.measure(KernelConfig()))});
  }
  T.print();
  return 0;
}
