//===- bench/bench_e5_scaling.cpp - E5: multicore saturation ----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E5 (paper Fig.: multicore scaling): predicted performance vs core count
/// with the ECM saturation model on both paper platforms.  The container
/// is single-core, so the multicore curve is purely analytic (the paper's
/// own premise: predict without running); the host single-thread number
/// anchors the executor side.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cachesim/MultiCoreSim.h"
#include "codegen/KernelExecutor.h"
#include "ecm/ECMModel.h"
#include "ecm/LayerCondition.h"
#include "support/Table.h"
#include "tuner/MeasureHarness.h"

using namespace ys;

int main() {
  ysbench::banner("E5", "Multicore scaling and bandwidth saturation",
                  "Linear scaling up to n_sat = ceil(TECM/TMem), then "
                  "memory-bandwidth bound.");

  GridDims Dims{512, 512, 256};
  std::vector<StencilSpec> Suite = {StencilSpec::heat3d(),
                                    StencilSpec::box3d(2)};

  for (const MachineModel &M : ysbench::paperMachines()) {
    ECMModel Model(M);
    std::printf("\n-- %s --\n", M.Name.c_str());
    for (const StencilSpec &S : Suite) {
      KernelConfig C;
      C.VectorFold.X = static_cast<int>(M.Core.simdDoubles());
      // Shared-cache pressure grows with active cores; model at full
      // occupancy for the curve.
      ECMPrediction P = Model.predict(S, Dims, C, M.CoresPerSocket);
      std::printf("%s: %s\n", S.name().c_str(), P.str().c_str());
      Table T({"cores", "pred MLUP/s", "regime"});
      for (unsigned Cores :
           {1u, 2u, 4u, 8u, P.SaturationCores, M.CoresPerSocket}) {
        if (Cores == 0 || Cores > M.CoresPerSocket)
          continue;
        double Perf = P.mlupsAtCores(Cores);
        const char *Regime =
            Cores >= P.SaturationCores ? "bandwidth-bound" : "scalable";
        T.addRow({format("%u", Cores), ysbench::mlups(Perf), Regime});
      }
      T.print();
    }
  }

  // Shared-cache pressure: the LC derating vs the multicore simulator.
  std::printf("\n-- Shared-cache pressure (scaled CLX, star3d-r2, "
              "48x48x32) --\n");
  {
    MachineModel Tiny = MachineModel::cascadeLakeSP();
    Tiny.Caches[0].SizeBytes = 8 * 1024;
    Tiny.Caches[1].SizeBytes = 32 * 1024;
    Tiny.Caches[2].SizeBytes = 512 * 1024;
    Tiny.Caches[2].SharingCores = 4;
    StencilSpec S = StencilSpec::star3d(2);
    GridDims SmallDims{48, 48, 32};
    LayerConditionAnalysis LC(Tiny);
    Table TP({"active cores", "pred mem B/LUP", "sim mem B/LUP"});
    for (unsigned Cores : {1u, 2u, 4u}) {
      double Pred =
          LC.analyze(S, SmallDims, KernelConfig(), Cores).BytesPerLup.back();
      MultiCoreTraffic Sim = runMultiCoreStencilTrace(
          Tiny, Cores, S, SmallDims, KernelConfig(), 2);
      TP.addRow({format("%u", Cores), format("%.1f", Pred),
                 format("%.1f", Sim.MemBytesPerLup)});
    }
    TP.print();
  }

  std::printf("\nHost anchor (single thread, this machine):\n");
  Table T({"stencil", "host MLUP/s"});
  for (const StencilSpec &S : Suite) {
    MeasureHarness H(S, {128, 128, 64}, 2, 1);
    T.addRow({S.name(), ysbench::mlups(H.measure(KernelConfig()))});
  }
  T.print();

  // Host thread scaling through the (z,y) tile scheduler, deliberately in
  // the regime the old 1-D z decomposition could not feed: Nz/B.Z = 2
  // z blocks, so any thread count above 2 used to leave cores idle.  The
  // 2-D tiling exposes Nz/B.Z * Ny/B.Y tiles and work stealing levels the
  // remainder; per-thread pool counters make imbalance visible.
  {
    unsigned MaxThreads = ThreadPool::defaultThreadCount();
    StencilSpec S = StencilSpec::heat3d();
    GridDims HostDims{192, 192, 64};
    std::printf("\n-- Host thread scaling (%s, B.Z=32 -> 2 z blocks; "
                "YS_THREADS caps the sweep) --\n",
                HostDims.str().c_str());
    Table TS({"threads", "MLUP/s", "pool stats", "max |diff| vs serial"});

    // Serial reference for the bit-identity check.
    Grid In(HostDims, 1);
    Rng R(11);
    In.fillRandom(R);
    KernelConfig Serial;
    Serial.Block = {0, 32, 32};
    Grid RefOut(HostDims, 1);
    KernelExecutor(S, Serial).runSweep({&In}, RefOut);

    std::vector<unsigned> Counts;
    for (unsigned T = 1; T < MaxThreads; T *= 2)
      Counts.push_back(T);
    Counts.push_back(MaxThreads);
    for (unsigned Threads : Counts) {
      KernelConfig C = Serial;
      C.Threads = Threads;
      MeasureHarness H(S, HostDims, 3, 2);
      double Mlups = H.measure(C);

      std::string Stats = "-";
      double Diff = 0.0;
      if (Threads > 1) {
        ThreadPool Pool(Threads);
        Grid Out(HostDims, 1, Fold(), &Pool, C.Block.Z, C.Block.Y);
        KernelExecutor(S, C).runSweep({&In}, Out, &Pool);
        Stats = Pool.stats().str();
        Diff = Grid::maxAbsDiffInterior(RefOut, Out);
      }
      TS.addRow({format("%u", Threads), ysbench::mlups(Mlups), Stats,
                 format("%.1e", Diff)});
    }
    TS.print();
  }
  return 0;
}
