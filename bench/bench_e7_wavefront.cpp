//===- bench/bench_e7_wavefront.cpp - E7: temporal wavefront ----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E7 (paper Fig.: temporal wavefront blocking): predicted memory-traffic
/// reduction and speedup for wavefront depths 1..8, validated against the
/// cache simulator and against host wall-clock time stepping.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cachesim/StencilTrace.h"
#include "codegen/KernelExecutor.h"
#include "ecm/ECMModel.h"
#include "support/Table.h"
#include "support/Timer.h"

using namespace ys;

int main() {
  ysbench::banner("E7", "Temporal wavefront blocking",
                  "Mini machine for the simulator; host timing uses this "
                  "machine's real caches.");

  MachineModel M = MachineModel::cascadeLakeSP();
  M.Name = "Mini";
  M.Caches[0].SizeBytes = 16 * 1024;
  M.Caches[1].SizeBytes = 128 * 1024;
  M.Caches[2].SizeBytes = 1024 * 1024;
  ECMModel Model(M);
  GridDims Dims{64, 64, 64};
  StencilSpec S = StencilSpec::heat3d();

  Table T({"depth", "pred mem B/LUP", "sim mem B/LUP", "pred speedup",
           "sim traffic gain"});
  double PredBase = 0, SimBase = 0, PredPerfBase = 0;
  for (int Depth : {1, 2, 4, 8}) {
    KernelConfig C;
    C.WavefrontDepth = Depth;
    C.Block.Z = 2;
    ECMPrediction P = Model.predict(S, Dims, C);
    CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
    StencilTraceRunner Runner(S, Dims, C);
    TraceTraffic Traffic =
        Depth > 1 ? Runner.runWavefront(Sim) : Runner.run(Sim, 4);
    double PredMem = P.Traffic.BytesPerLup.back();
    double SimMem = Traffic.BytesPerLup.back();
    if (Depth == 1) {
      PredBase = PredMem;
      SimBase = SimMem;
      PredPerfBase = P.MLupsSaturated;
    }
    T.addRow({format("%d", Depth), format("%.1f", PredMem),
              format("%.1f", SimMem),
              format("%.2fx", P.MLupsSaturated / PredPerfBase),
              format("%.2fx", SimBase / SimMem)});
  }
  T.print();
  (void)PredBase;

  // Host timing: 16 timesteps on a grid larger than typical host LLC.
  std::printf("\n-- Host wall-clock (16 timesteps, %s grid) --\n",
              GridDims{256, 256, 128}.str().c_str());
  GridDims HostDims{256, 256, 128};
  Table TH({"depth", "seconds", "MLUP/s", "speedup vs depth 1"});
  double Base = 0;
  for (int Depth : {1, 2, 4}) {
    KernelConfig C;
    C.WavefrontDepth = Depth;
    C.Block.Z = 16;
    KernelExecutor Exec(S, C);
    Grid U(HostDims, 1), Scratch(HostDims, 1);
    Rng R(1);
    U.fillRandom(R);
    TimingStats Stats = measureSeconds(
        [&] { Exec.runTimeSteps(U, Scratch, 16); }, 2);
    double Mlups =
        16.0 * static_cast<double>(HostDims.lups()) / Stats.Median / 1e6;
    if (Depth == 1)
      Base = Stats.Median;
    TH.addRow({format("%d", Depth), ysbench::seconds(Stats.Median),
               ysbench::mlups(Mlups),
               format("%.2fx", Base / Stats.Median)});
  }
  TH.print();

  // Threaded wavefront: each slab's (zBlock, yBlock) tiles are spread over
  // the pool; per-thread counters show how much the stealing path had to
  // rebalance the narrow per-slab tile grids.
  unsigned Threads = ThreadPool::defaultThreadCount();
  if (Threads > 1) {
    std::printf("\n-- Threaded wavefront (%u threads, depth 4, 8 steps) "
                "--\n", Threads);
    Table TT({"config", "seconds", "MLUP/s", "pool stats"});
    for (int Depth : {1, 4}) {
      KernelConfig C;
      C.WavefrontDepth = Depth;
      C.Block = {0, 32, 16};
      C.Threads = Threads;
      KernelExecutor Exec(S, C);
      ThreadPool Pool(Threads);
      Grid U(HostDims, 1, Fold(), &Pool, C.Block.Z, C.Block.Y);
      Grid Scratch(HostDims, 1, Fold(), &Pool, C.Block.Z, C.Block.Y);
      Rng R(1);
      U.fillRandom(R);
      Pool.resetStats();
      TimingStats Stats = measureSeconds(
          [&] { Exec.runTimeSteps(U, Scratch, 8, &Pool); }, 2);
      double Mlups =
          8.0 * static_cast<double>(HostDims.lups()) / Stats.Median / 1e6;
      TT.addRow({format("depth %d", Depth), ysbench::seconds(Stats.Median),
                 ysbench::mlups(Mlups), Pool.stats().str()});
    }
    TT.print();
  }
  return 0;
}
