//===- bench/bench_e7_wavefront.cpp - E7: temporal schedules ----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E7 (paper Fig.: temporal blocking): predicted memory-traffic reduction
/// and speedup for the temporal schedules (wavefront, diamond,
/// deep-temporal) over fusion depths 2..8, validated against the cache
/// simulator and against host wall-clock time stepping.
///
/// --ys-smoke        shrunk run gating the simulated traffic reductions
///                   (used as the `schedule` ctest label).
/// --ys-json[=PATH]  emit one JSON-lines row per (schedule, depth) to
///                   PATH (default BENCH_schedules.json).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cachesim/StencilTrace.h"
#include "codegen/KernelExecutor.h"
#include "ecm/ECMModel.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstring>

using namespace ys;

namespace {

struct SchedRow {
  Schedule Sched = Schedule::Wavefront;
  int Depth = 1;
  double PredMem = 0;
  double SimMem = 0;
  double PredMlups = 0;
};

KernelConfig schedConfig(Schedule Sched, int Depth, long Bz) {
  KernelConfig C;
  C.Sched = Sched;
  C.WavefrontDepth = Depth;
  // Deep-temporal's per-plane pipeline ignores the z block; the others
  // use it as the frontier slab / minimum tile width.
  C.Block.Z = Sched == Schedule::DeepTemporal ? 0 : Bz;
  return C;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  bool WriteJson = false;
  std::string JsonPath = "BENCH_schedules.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--ys-smoke") == 0)
      Smoke = true;
    else if (std::strcmp(argv[I], "--ys-json") == 0)
      WriteJson = true;
    else if (std::strncmp(argv[I], "--ys-json=", 10) == 0) {
      WriteJson = true;
      JsonPath = argv[I] + 10;
    }
  }

  ysbench::banner("E7", "Temporal schedules (wavefront/diamond/deep)",
                  "Mini machine for the simulator; host timing uses this "
                  "machine's real caches.");

  MachineModel M = MachineModel::cascadeLakeSP();
  M.Name = "Mini";
  M.Caches[0].SizeBytes = 16 * 1024;
  M.Caches[1].SizeBytes = 128 * 1024;
  M.Caches[2].SizeBytes = 1024 * 1024;
  ECMModel Model(M);
  GridDims Dims{64, 64, 64};
  StencilSpec S = StencilSpec::heat3d();

  // Depth-1 baseline: one plain blocked sweep.
  KernelConfig Base;
  Base.Block.Z = 2;
  ECMPrediction BaseP = Model.predict(S, Dims, Base);
  double PredBase, SimBase, PredPerfBase = BaseP.MLupsSaturated;
  {
    CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
    StencilTraceRunner Runner(S, Dims, Base);
    PredBase = BaseP.Traffic.BytesPerLup.back();
    SimBase = Runner.run(Sim, 4).BytesPerLup.back();
  }

  Table T({"schedule", "depth", "pred mem B/LUP", "sim mem B/LUP",
           "pred speedup", "sim traffic gain"});
  T.addRow({"(sweep)", "1", format("%.1f", PredBase),
            format("%.1f", SimBase), "1.00x", "1.00x"});
  std::vector<SchedRow> Rows;
  for (Schedule Sched : {Schedule::Wavefront, Schedule::Diamond,
                         Schedule::DeepTemporal}) {
    for (int Depth : {2, 4, 8}) {
      KernelConfig C = schedConfig(Sched, Depth, 2);
      SchedRow Row;
      Row.Sched = Sched;
      Row.Depth = Depth;
      ECMPrediction P = Model.predict(S, Dims, C);
      Row.PredMem = P.Traffic.BytesPerLup.back();
      Row.PredMlups = P.MLupsSaturated;
      CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
      StencilTraceRunner Runner(S, Dims, C);
      Row.SimMem = Runner.runTemporal(Sim).BytesPerLup.back();
      Rows.push_back(Row);
      T.addRow({scheduleName(Sched), format("%d", Depth),
                format("%.1f", Row.PredMem), format("%.1f", Row.SimMem),
                format("%.2fx", Row.PredMlups / PredPerfBase),
                format("%.2fx", SimBase / Row.SimMem)});
    }
  }
  T.print();

  if (WriteJson) {
    ysbench::JsonLinesWriter Json(JsonPath);
    for (const SchedRow &Row : Rows) {
      JsonObjectWriter Obj;
      Obj.field("bench", "schedules")
          .field("stencil", S.name())
          .field("grid", Dims.str())
          .field("schedule", scheduleName(Row.Sched))
          .field("depth", static_cast<long>(Row.Depth))
          .field("pred_mem_blup", Row.PredMem)
          .field("sim_mem_blup", Row.SimMem)
          .field("pred_speedup", Row.PredMlups / PredPerfBase)
          .field("sim_traffic_gain", SimBase / Row.SimMem);
      Json.write(Obj);
    }
  }

  // Gates: every schedule at depth 4 fits the mini L3 window and must
  // show its traffic signature in the simulator — a clear reduction for
  // the pure time-skewed schedules, a smaller one for diamond (its
  // phase-2 boundary diamonds reload the tile edges).
  int Failures = 0;
  for (const SchedRow &Row : Rows) {
    if (Row.Depth != 4)
      continue;
    double Gain = SimBase / Row.SimMem;
    double Need = Row.Sched == Schedule::Diamond ? 1.1 : 1.3;
    if (Gain < Need) {
      std::fprintf(stderr,
                   "GATE: %s depth %d sim traffic gain %.2fx < %.2fx\n",
                   scheduleName(Row.Sched), Row.Depth, Gain, Need);
      ++Failures;
    }
    // The model's temporal rescale must stay on the same side of the
    // ledger as the simulator (within 2x either way).
    if (Row.PredMem > 2.0 * Row.SimMem || Row.SimMem > 2.0 * Row.PredMem) {
      std::fprintf(stderr,
                   "GATE: %s depth %d pred %.1f vs sim %.1f B/LUP "
                   "disagree by more than 2x\n",
                   scheduleName(Row.Sched), Row.Depth, Row.PredMem,
                   Row.SimMem);
      ++Failures;
    }
  }
  if (Smoke) {
    std::printf("smoke: %s\n", Failures ? "FAIL" : "ok");
    return Failures ? 1 : 0;
  }

  // Host timing: 16 timesteps on a grid larger than typical host LLC.
  std::printf("\n-- Host wall-clock (16 timesteps, %s grid) --\n",
              GridDims{256, 256, 128}.str().c_str());
  GridDims HostDims{256, 256, 128};
  Table TH({"config", "seconds", "MLUP/s", "speedup vs sweep"});
  struct HostCase {
    const char *Label;
    KernelConfig C;
  };
  KernelConfig HostBase;
  HostBase.Block.Z = 16;
  std::vector<HostCase> HostCases = {
      {"sweep", HostBase},
      {"wavefront d2", schedConfig(Schedule::Wavefront, 2, 16)},
      {"wavefront d4", schedConfig(Schedule::Wavefront, 4, 16)},
      {"diamond d4", schedConfig(Schedule::Diamond, 4, 16)},
      {"deep-temporal d4", schedConfig(Schedule::DeepTemporal, 4, 0)},
  };
  double HostBaseSec = 0;
  for (const HostCase &HC : HostCases) {
    KernelExecutor Exec(S, HC.C);
    Grid U(HostDims, 1), Scratch(HostDims, 1);
    Rng R(1);
    U.fillRandom(R);
    TimingStats Stats = measureSeconds(
        [&] { Exec.runTimeSteps(U, Scratch, 16); }, 2);
    double Mlups =
        16.0 * static_cast<double>(HostDims.lups()) / Stats.Median / 1e6;
    if (HostBaseSec == 0)
      HostBaseSec = Stats.Median;
    TH.addRow({HC.Label, ysbench::seconds(Stats.Median),
               ysbench::mlups(Mlups),
               format("%.2fx", HostBaseSec / Stats.Median)});
  }
  TH.print();

  // Threaded temporal schedules: each slab's (zBlock, yBlock) tiles are
  // spread over the pool; per-thread counters show how much the stealing
  // path had to rebalance the narrow per-slab tile grids.
  unsigned Threads = ThreadPool::defaultThreadCount();
  if (Threads > 1) {
    std::printf("\n-- Threaded schedules (%u threads, depth 4, 8 steps) "
                "--\n", Threads);
    Table TT({"config", "seconds", "MLUP/s", "pool stats"});
    std::vector<HostCase> ThreadedCases = {
        {"sweep", HostBase},
        {"wavefront d4", schedConfig(Schedule::Wavefront, 4, 16)},
        {"diamond d4", schedConfig(Schedule::Diamond, 4, 16)},
    };
    for (HostCase &HC : ThreadedCases) {
      HC.C.Block.Y = 32;
      HC.C.Threads = Threads;
      KernelExecutor Exec(S, HC.C);
      ThreadPool Pool(Threads);
      Grid U(HostDims, 1, Fold(), &Pool, HC.C.Block.Z, HC.C.Block.Y);
      Grid Scratch(HostDims, 1, Fold(), &Pool, HC.C.Block.Z, HC.C.Block.Y);
      Rng R(1);
      U.fillRandom(R);
      Pool.resetStats();
      TimingStats Stats = measureSeconds(
          [&] { Exec.runTimeSteps(U, Scratch, 8, &Pool); }, 2);
      double Mlups =
          8.0 * static_cast<double>(HostDims.lups()) / Stats.Median / 1e6;
      TT.addRow({HC.Label, ysbench::seconds(Stats.Median),
                 ysbench::mlups(Mlups), Pool.stats().str()});
    }
    TT.print();
  }
  return Failures ? 1 : 0;
}
