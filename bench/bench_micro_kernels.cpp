//===- bench/bench_micro_kernels.cpp - google-benchmark micro suite ---------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Micro-benchmarks of the kernel executor paths under google-benchmark:
/// sweep throughput by stencil, blocking, fold, and wavefront depth.
/// Complements the experiment binaries with statistically managed timings.
///
//===----------------------------------------------------------------------===//

#include "codegen/KernelExecutor.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace ys;

namespace {

void runSweepBench(benchmark::State &State, const StencilSpec &Spec,
                   KernelConfig Config, GridDims Dims) {
  Grid In(Dims, Spec.radius(), Config.VectorFold);
  Grid Out(Dims, Spec.radius(), Config.VectorFold);
  Rng R(1);
  In.fillRandom(R);
  KernelExecutor Exec(Spec, Config);
  for (auto _ : State) {
    Exec.runSweep({&In}, Out);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * Dims.lups());
}

void BM_HeatSweepUnblocked(benchmark::State &State) {
  runSweepBench(State, StencilSpec::heat3d(), KernelConfig(),
                {128, 128, 64});
}
BENCHMARK(BM_HeatSweepUnblocked);

void BM_HeatSweepBlocked(benchmark::State &State) {
  KernelConfig C;
  C.Block.Y = State.range(0);
  runSweepBench(State, StencilSpec::heat3d(), C, {128, 128, 64});
}
BENCHMARK(BM_HeatSweepBlocked)->Arg(8)->Arg(32)->Arg(128);

void BM_StarRadiusSweep(benchmark::State &State) {
  runSweepBench(State,
                StencilSpec::star3d(static_cast<int>(State.range(0))),
                KernelConfig(), {96, 96, 48});
}
BENCHMARK(BM_StarRadiusSweep)->Arg(1)->Arg(2)->Arg(4);

void BM_BoxSweep(benchmark::State &State) {
  runSweepBench(State, StencilSpec::box3d(static_cast<int>(State.range(0))),
                KernelConfig(), {64, 64, 32});
}
BENCHMARK(BM_BoxSweep)->Arg(1)->Arg(2);

void BM_FoldedLayoutSweep(benchmark::State &State) {
  KernelConfig C;
  C.VectorFold.X = 4;
  C.VectorFold.Y = 2;
  runSweepBench(State, StencilSpec::heat3d(), C, {96, 96, 48});
}
BENCHMARK(BM_FoldedLayoutSweep);

void BM_WavefrontTimeSteps(benchmark::State &State) {
  StencilSpec Spec = StencilSpec::heat3d();
  GridDims Dims{128, 128, 64};
  KernelConfig C;
  C.WavefrontDepth = static_cast<int>(State.range(0));
  C.Block.Z = 8;
  Grid U(Dims, 1), Scratch(Dims, 1);
  Rng R(1);
  U.fillRandom(R);
  KernelExecutor Exec(Spec, C);
  for (auto _ : State) {
    Exec.runTimeSteps(U, Scratch, 8);
    benchmark::DoNotOptimize(U.data());
  }
  State.SetItemsProcessed(State.iterations() * Dims.lups() * 8);
}
BENCHMARK(BM_WavefrontTimeSteps)->Arg(1)->Arg(2)->Arg(4);

} // namespace

BENCHMARK_MAIN();
