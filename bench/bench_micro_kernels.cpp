//===- bench/bench_micro_kernels.cpp - google-benchmark micro suite ---------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Micro-benchmarks of the kernel executor paths under google-benchmark:
/// sweep throughput by stencil, blocking, fold, and wavefront depth.
/// Complements the experiment binaries with statistically managed timings.
///
/// Besides the default google-benchmark mode, the binary has two modes of
/// its own (which bypass google-benchmark entirely):
///
///   --ys-compare [--ys-json=PATH]   scalar-vs-folded GLUP/s for heat3d
///                                   r1 on every available SIMD dispatch
///                                   target, plus plan-vs-JIT rows per
///                                   fold (skipped when no system
///                                   compiler is available), as JSON
///                                   lines (default BENCH_micro.json)
///   --ys-smoke                      one tiny plan built and run per
///                                   dispatch target; the `perf`-labeled
///                                   ctest smoke
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "codegen/JitCompiler.h"
#include "codegen/KernelExecutor.h"
#include "codegen/KernelPlan.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

using namespace ys;

namespace {

void runSweepBench(benchmark::State &State, const StencilSpec &Spec,
                   KernelConfig Config, GridDims Dims) {
  Grid In(Dims, Spec.radius(), Config.VectorFold);
  Grid Out(Dims, Spec.radius(), Config.VectorFold);
  Rng R(1);
  In.fillRandom(R);
  KernelExecutor Exec(Spec, Config);
  for (auto _ : State) {
    Exec.runSweep({&In}, Out);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * Dims.lups());
}

void BM_HeatSweepUnblocked(benchmark::State &State) {
  runSweepBench(State, StencilSpec::heat3d(), KernelConfig(),
                {128, 128, 64});
}
BENCHMARK(BM_HeatSweepUnblocked);

void BM_HeatSweepBlocked(benchmark::State &State) {
  KernelConfig C;
  C.Block.Y = State.range(0);
  runSweepBench(State, StencilSpec::heat3d(), C, {128, 128, 64});
}
BENCHMARK(BM_HeatSweepBlocked)->Arg(8)->Arg(32)->Arg(128);

void BM_StarRadiusSweep(benchmark::State &State) {
  runSweepBench(State,
                StencilSpec::star3d(static_cast<int>(State.range(0))),
                KernelConfig(), {96, 96, 48});
}
BENCHMARK(BM_StarRadiusSweep)->Arg(1)->Arg(2)->Arg(4);

void BM_BoxSweep(benchmark::State &State) {
  runSweepBench(State, StencilSpec::box3d(static_cast<int>(State.range(0))),
                KernelConfig(), {64, 64, 32});
}
BENCHMARK(BM_BoxSweep)->Arg(1)->Arg(2);

void BM_FoldedLayoutSweep(benchmark::State &State) {
  KernelConfig C;
  C.VectorFold.X = 4;
  C.VectorFold.Y = 2;
  runSweepBench(State, StencilSpec::heat3d(), C, {96, 96, 48});
}
BENCHMARK(BM_FoldedLayoutSweep);

void BM_WavefrontTimeSteps(benchmark::State &State) {
  StencilSpec Spec = StencilSpec::heat3d();
  GridDims Dims{128, 128, 64};
  KernelConfig C;
  C.WavefrontDepth = static_cast<int>(State.range(0));
  C.Block.Z = 8;
  Grid U(Dims, 1), Scratch(Dims, 1);
  Rng R(1);
  U.fillRandom(R);
  KernelExecutor Exec(Spec, C);
  for (auto _ : State) {
    Exec.runTimeSteps(U, Scratch, 8);
    benchmark::DoNotOptimize(U.data());
  }
  State.SetItemsProcessed(State.iterations() * Dims.lups() * 8);
}
BENCHMARK(BM_WavefrontTimeSteps)->Arg(1)->Arg(2)->Arg(4);

//===----------------------------------------------------------------------===//
// --ys-compare / --ys-smoke: plan-dispatch measurement without
// google-benchmark
//===----------------------------------------------------------------------===//

/// Min-of-repeats GLUP/s of one configuration on one forced SIMD target.
/// The executor is reused across warm-up and timed repeats, so the plan
/// is compiled once and the timed region is the steady-state hot path.
double measureGlups(const StencilSpec &Spec, const KernelConfig &Config,
                    GridDims Dims, unsigned Repeats,
                    unsigned SweepsPerRepeat,
                    KernelBackend Backend = KernelBackend::Plan) {
  Grid In(Dims, Spec.radius(), Config.VectorFold);
  Grid Out(Dims, Spec.radius(), Config.VectorFold);
  Rng R(1);
  In.fillRandom(R);
  Out.copyHaloFrom(In);
  KernelExecutor Exec(Spec, Config);
  Exec.setBackend(Backend);
  const Grid *InPtr = &In;
  TimingStats Stats = measureSeconds(
      [&] {
        for (unsigned S = 0; S < SweepsPerRepeat; ++S)
          Exec.runSweep(&InPtr, 1, Out);
      },
      Repeats);
  double Lups = static_cast<double>(Dims.lups()) * SweepsPerRepeat;
  return Lups / Stats.Min / 1e9;
}

/// Scalar-vs-folded sweep throughput for heat3d r1, per dispatch target.
/// Emits one JSON line per (target, fold) plus a summary line per target
/// with the best folded-to-scalar ratio.
int runCompare(const std::string &JsonPath) {
  ysbench::banner("micro", "scalar vs folded compiled-plan kernels",
                  "heat3d r1; GLUP/s, min over repeats; one line per "
                  "(simd, fold)");
  ysbench::JsonLinesWriter Json(JsonPath);
  if (!Json.ok())
    return 1;

  const StencilSpec Spec = StencilSpec::heat3d();
  const GridDims Dims{128, 128, 64};
  const unsigned Repeats = 5, Sweeps = 2;
  const Fold Folds[] = {{1, 1, 1}, {8, 1, 1}, {4, 2, 1}, {2, 2, 1}};

  int Failures = 0;
  for (SimdTarget T : availableSimdTargets()) {
    setenv("YS_SIMD", simdTargetName(T), 1);
    double ScalarGlups = 0.0, BestFolded = 0.0;
    std::string BestFoldName;
    for (const Fold &F : Folds) {
      KernelConfig C;
      C.VectorFold = F;
      double Glups = measureGlups(Spec, C, Dims, Repeats, Sweeps);
      std::printf("  %-7s fold %-7s %7.3f GLUP/s\n", simdTargetName(T),
                  F.str().c_str(), Glups);
      JsonObjectWriter Obj;
      Obj.field("bench", "micro_scalar_vs_folded")
          .field("stencil", Spec.name())
          .field("dims", Dims.str())
          .field("simd", simdTargetName(T))
          .field("fold", F.str())
          .field("glups", Glups)
          .field("repeats", static_cast<long>(Repeats));
      Json.write(Obj);
      if (F.isScalar())
        ScalarGlups = Glups;
      else if (Glups > BestFolded) {
        BestFolded = Glups;
        BestFoldName = F.str();
      }
    }
    double Ratio = ScalarGlups > 0 ? BestFolded / ScalarGlups : 0.0;
    // Acceptance bar: the best folded kernel within 10% of (or faster
    // than) the scalar layout.
    bool Ok = Ratio >= 0.9;
    std::printf("  %-7s best folded %s: %.2fx scalar  [%s]\n",
                simdTargetName(T), BestFoldName.c_str(), Ratio,
                Ok ? "ok" : "BELOW 0.9x");
    JsonObjectWriter Sum;
    Sum.field("bench", "micro_folded_ratio")
        .field("simd", simdTargetName(T))
        .field("best_fold", BestFoldName)
        .field("scalar_glups", ScalarGlups)
        .field("folded_glups", BestFolded)
        .field("ratio", Ratio)
        .field("ok", static_cast<long>(Ok));
    Json.write(Sum);
    Failures += Ok ? 0 : 1;
  }
  unsetenv("YS_SIMD");

  // Plan-vs-JIT: the same kernels timed through the runtime-JIT backend
  // (system compiler + dlopen) next to the in-process plans, one row per
  // (backend, fold).  Informational — the acceptance gate above stays on
  // the plan numbers — and skipped entirely when no compiler works, so
  // the suite still runs in compilerless sandboxes.
  if (!JitRuntime::instance().available()) {
    std::printf("  plan-vs-jit: skipped (no working C++ compiler)\n");
  } else {
    const Fold JitFolds[] = {{1, 1, 1}, {4, 2, 1}};
    for (const Fold &F : JitFolds) {
      KernelConfig C;
      C.VectorFold = F;
      double Plan =
          measureGlups(Spec, C, Dims, Repeats, Sweeps, KernelBackend::Plan);
      double Jit =
          measureGlups(Spec, C, Dims, Repeats, Sweeps, KernelBackend::Jit);
      double Ratio = Plan > 0 ? Jit / Plan : 0.0;
      std::printf("  plan-vs-jit fold %-7s plan %7.3f  jit %7.3f GLUP/s "
                  "(%.2fx)\n",
                  F.str().c_str(), Plan, Jit, Ratio);
      for (const auto &[Backend, Glups] :
           {std::pair<const char *, double>{"plan", Plan},
            std::pair<const char *, double>{"jit", Jit}}) {
        JsonObjectWriter Obj;
        Obj.field("bench", "micro_plan_vs_jit")
            .field("stencil", Spec.name())
            .field("dims", Dims.str())
            .field("backend", Backend)
            .field("fold", F.str())
            .field("glups", Glups)
            .field("repeats", static_cast<long>(Repeats));
        Json.write(Obj);
      }
      JsonObjectWriter Sum;
      Sum.field("bench", "micro_jit_ratio")
          .field("fold", F.str())
          .field("plan_glups", Plan)
          .field("jit_glups", Jit)
          .field("ratio", Ratio);
      Json.write(Sum);
    }
  }

  std::printf("results: %s\n", JsonPath.c_str());
  return Failures == 0 ? 0 : 1;
}

/// Fast smoke for CI (the `perf`-labeled ctest): build and run one small
/// plan per available dispatch target; fails on any dispatch mismatch.
int runSmoke() {
  const StencilSpec Spec = StencilSpec::heat3d();
  const GridDims Dims{32, 16, 16};
  int Failures = 0;
  for (SimdTarget T : availableSimdTargets()) {
    setenv("YS_SIMD", simdTargetName(T), 1);
    KernelConfig C;
    C.VectorFold = {static_cast<int>(simdTargetDoubles(T)), 1, 1};
    double Glups = measureGlups(Spec, C, Dims, 2, 1);
    bool Ok = Glups > 0.0;
    std::printf("smoke %-7s fold %-7s %.3f GLUP/s [%s]\n",
                simdTargetName(T), C.VectorFold.str().c_str(), Glups,
                Ok ? "ok" : "FAIL");
    Failures += Ok ? 0 : 1;
  }
  unsetenv("YS_SIMD");
  return Failures == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  bool Compare = false, Smoke = false;
  std::string JsonPath = "BENCH_micro.json";
  // Strip the --ys-* flags; everything else is google-benchmark's.
  int Kept = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--ys-compare") == 0)
      Compare = true;
    else if (std::strcmp(argv[I], "--ys-smoke") == 0)
      Smoke = true;
    else if (std::strncmp(argv[I], "--ys-json=", 10) == 0)
      JsonPath = argv[I] + 10;
    else
      argv[Kept++] = argv[I];
  }
  argc = Kept;
  if (Smoke)
    return runSmoke();
  if (Compare)
    return runCompare(JsonPath);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
