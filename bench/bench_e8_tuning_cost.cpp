//===- bench/bench_e8_tuning_cost.cpp - E8: auto-tuning cost ----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E8 (paper Table: autotuning cost): the headline cost comparison —
/// YaskSite's model-guided selection needs zero kernel executions while
/// search-based tuners (exhaustive, hill-climbing, random) pay per
/// measurement, at comparable achieved performance.
///
/// Measurements persist in a tuning cache (`YS_TUNE_CACHE=<file>`, default
/// e8_tuning_cache.json), so a second invocation answers most strategies
/// from the cache and times far fewer kernels — the cache hit/miss summary
/// printed at the end makes the saving visible.  Set `YS_TRACE=<file>` for
/// a JSON-lines record of every trial.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ecm/BlockingSelector.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "tuner/MeasureHarness.h"
#include "tuner/OnlineTuner.h"
#include "tuner/TuningCache.h"
#include "tuner/TuningStrategy.h"

using namespace ys;

int main() {
  ysbench::banner("E8", "Auto-tuning cost: model-guided vs search",
                  "Measurements run the real kernel on this machine; the "
                  "model-guided row runs none.");

  StencilSpec S = StencilSpec::star3d(2);
  GridDims Dims{192, 192, 96};
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);

  std::vector<KernelConfig> Space =
      BlockingSelector::candidateSpace(Dims, KernelConfig(), false);
  std::printf("Search space: %zu configurations; stencil %s, grid %s\n\n",
              Space.size(), S.name().c_str(), Dims.str().c_str());

  std::string CachePath = TuningCache::envPath();
  if (CachePath.empty())
    CachePath = "e8_tuning_cache.json";
  TuningCache Cache = TuningCache::loadOrCreate(CachePath);
  std::printf("Tuning cache: %s (%zu entries loaded)\n\n", CachePath.c_str(),
              Cache.size());

  MeasureHarness Harness(S, Dims, 2, 1);
  Harness.attachCache(&Cache, M);
  MeasureFn Measure = Harness.measurer();

  ExhaustiveStrategy Exhaustive;
  HierarchicalStrategy Hierarchical;
  RandomStrategy Random(8, 2024);
  ModelGuidedStrategy ModelOnly(Model, S, Dims);
  ModelGuidedStrategy ModelTop3(Model, S, Dims, 1, 3);

  Table T({"strategy", "kernel runs", "cache hits", "model evals",
           "tuning time", "best config", "best measured MLUP/s"});
  std::vector<std::pair<TuningStrategy *, const char *>> Strategies = {
      {&Exhaustive, "exhaustive (YASK-style)"},
      {&Hierarchical, "hierarchical hill-climb"},
      {&Random, "random-8"},
      {&ModelOnly, "YaskSite model-only"},
      {&ModelTop3, "YaskSite model+top3 verify"}};

  for (auto &[Strategy, Label] : Strategies) {
    unsigned RunsBefore = Harness.totalKernelRuns();
    unsigned CachedBefore = Harness.cachedMeasurements();
    TuningResult R = Strategy->tune(Space, Measure);
    unsigned Runs = Harness.totalKernelRuns() - RunsBefore;
    unsigned CacheHits = Harness.cachedMeasurements() - CachedBefore;
    // For the model-only row, measure its pick once for the comparison
    // column (not counted as tuning cost).
    double BestMeasured =
        R.BestWasMeasured ? R.BestMlups : Measure(R.Best);
    T.addRow({Label, format("%u", Runs), format("%u", CacheHits),
              format("%u", R.ModelEvaluations),
              ysbench::seconds(R.TuningSeconds), R.Best.Block.str(),
              ysbench::mlups(BestMeasured)});
  }
  T.print();

  // YASK's runtime auto-tuner: trials happen inside a real time-stepped
  // run, so no work is wasted — but the early steps run mis-tuned
  // configurations.  With a warm cache, candidates measured on a prior
  // invocation skip their timed trials entirely.
  std::printf("\n-- Online (in-run) auto-tuning over 32 timesteps --\n");
  {
    Grid U(Dims, S.radius()), Scratch(Dims, S.radius());
    Rng R(9);
    U.fillRandom(R);
    OnlineTuner Online(S, Space, /*StepsPerTrial=*/1);
    Online.attachCache(&Cache, M);
    Timer Tm;
    OnlineTuner::Result OR = Online.run(U, Scratch, 32);
    double Total = Tm.seconds();
    std::printf("trials timed: %u of %zu candidates (%u from cache); "
                "%d tuning steps incl. %d warm-up, %.2f s; locked config "
                "%s; whole run %.2f s\n",
                OR.TrialsRun, Space.size(), OR.CachedTrials,
                OR.TuningSteps, OR.WarmupSteps, OR.TuningSeconds,
                OR.Best.Block.str().c_str(), Total);
  }

  if (Error E = Cache.saveFile(CachePath))
    std::printf("\nwarning: could not save tuning cache: %s\n",
                E.message().c_str());
  std::printf("\nTuning cache after this run: %s (saved to %s)\n",
              Cache.statsString().c_str(), CachePath.c_str());
  return 0;
}
