//===- bench/bench_e9_offsite_ranking.cpp - E9: Offsite ranking -------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E9 (paper Fig./Table: Offsite integration): implementation-variant
/// ranking for explicit ODE methods.  YaskSite's predictions rank the
/// variants; measuring every variant on the host checks the ranking
/// (Kendall tau, measured rank of the model's pick, and speedups).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "offsite/Offsite.h"
#include "support/Table.h"
#include "tuner/TuningCache.h"

#include <algorithm>

using namespace ys;

namespace {

void runCase(const OffsiteTuner &Tuner, const std::vector<ODEVariant> &Vs,
             const IVP &Problem, const char *Method, TuningCache &Cache,
             const std::string &MachineId) {
  std::vector<VariantPrediction> Ranked = Tuner.rank(Vs, Problem);

  // Primary "measurement": deterministic cache-simulator traffic (the
  // LIKWID substitute); secondary: host wall clock (this container's CPU
  // is single-core/compute-bound, unlike the modeled socket — divergence
  // there is expected and discussed in EXPERIMENTS.md).  Host timings
  // persist in the tuning cache keyed on (machine, method, variant,
  // problem, grid), so repeat invocations skip the kernel runs.
  GridDims ProxyDims{48, 48, 48};
  if (Problem.dims().Nz == 1 || Problem.dims().Ny == 1)
    ProxyDims = Problem.dims();
  std::vector<double> Pred, Proxy, Host;
  unsigned HostCached = 0;
  for (const VariantPrediction &P : Ranked) {
    Pred.push_back(P.SecondsPerStep);
    Proxy.push_back(
        Tuner.proxySecondsPerStep(P.Variant, Problem, ProxyDims));
    std::string Key = TuningCache::fingerprintRaw(
        "e9|machine=" + MachineId + "|method=" + Method + "|variant=" +
        P.Variant.Name + "|problem=" + Problem.name() + "|dims=" +
        Problem.dims().str() + "|steps=1|repeats=2");
    if (const TuningCache::Entry *E = Cache.lookup(Key)) {
      Host.push_back(E->SecondsPerStep);
      ++HostCached;
    } else {
      double Sec = Tuner.measureSecondsPerStep(P.Variant, Problem, 1, 2);
      Host.push_back(Sec);
      TuningCache::Entry E2;
      E2.Key = Key;
      E2.Summary = std::string(Method) + "/" + P.Variant.Name + " on " +
                   Problem.name();
      E2.SecondsPerStep = Sec;
      E2.Repeats = 2;
      Cache.insert(std::move(E2));
    }
  }
  if (HostCached)
    std::printf("(%u of %zu host timings served from the tuning cache)\n",
                HostCached, Ranked.size());
  double TauProxy = kendallTau(Pred, Proxy);
  double TauHost = kendallTau(Pred, Host);

  unsigned ProxyRankOfPick = 1;
  for (size_t J = 1; J < Proxy.size(); ++J)
    if (Proxy[J] < Proxy[0])
      ++ProxyRankOfPick;
  double ProxyWorst = *std::max_element(Proxy.begin(), Proxy.end());

  std::printf("\n%s on %s: tau(sim)=%.2f tau(host)=%.2f, model pick sim "
              "rank %u/%zu, sim speedup over worst %.2fx\n",
              Method, Problem.name().c_str(), TauProxy, TauHost,
              ProxyRankOfPick, Ranked.size(), ProxyWorst / Proxy[0]);
  Table T({"variant", "sweeps/step", "pred s/step", "sim s/step",
           "host s/step", "pred rank", "sim rank"});
  for (size_t I = 0; I < Ranked.size(); ++I) {
    unsigned SimRank = 1;
    for (size_t J = 0; J < Proxy.size(); ++J)
      if (Proxy[J] < Proxy[I])
        ++SimRank;
    T.addRow({Ranked[I].Variant.Name,
              format("%u", Ranked[I].SweepsPerStep),
              ysbench::seconds(Pred[I]), ysbench::seconds(Proxy[I]),
              ysbench::seconds(Host[I]), format("%zu", I + 1),
              format("%u", SimRank)});
  }
  T.print();
}

} // namespace

int main() {
  ysbench::banner("E9", "Offsite variant ranking: predicted vs measured",
                  "Predictions use the CLX model at 1 core (matching the "
                  "single-core host measurement).");

  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  OffsiteTuner Tuner(Model, /*Cores=*/1);

  std::string CachePath = TuningCache::envPath();
  if (CachePath.empty())
    CachePath = "e9_tuning_cache.json";
  TuningCache Cache = TuningCache::loadOrCreate(CachePath);
  std::string MachineId = TuningCache::machineId(M);
  std::printf("Tuning cache: %s (%zu entries loaded)\n", CachePath.c_str(),
              Cache.size());

  // 128^3 keeps the working set beyond the modeled caches so both the
  // model and the host operate in the same (streaming) regime.
  Heat3DIVP Heat(128);
  runCase(Tuner, Tuner.enumerateRK(ButcherTableau::classicRK4(), Heat),
          Heat, "rk4", Cache, MachineId);
  runCase(Tuner, Tuner.enumerateRK(ButcherTableau::fehlberg45(), Heat),
          Heat, "rkf45", Cache, MachineId);
  runCase(Tuner,
          Tuner.enumeratePIRK(ButcherTableau::radauIIA2(), 2, Heat), Heat,
          "pirk-radauIIA2-m2", Cache, MachineId);

  InverterChainIVP Chain(200000);
  runCase(Tuner, Tuner.enumerateRK(ButcherTableau::classicRK4(), Chain),
          Chain, "rk4", Cache, MachineId);

  if (Error E = Cache.saveFile(CachePath))
    std::printf("warning: could not save tuning cache: %s\n",
                E.message().c_str());
  std::printf("\nTuning cache after this run: %s (saved to %s)\n",
              Cache.statsString().c_str(), CachePath.c_str());
  return 0;
}
