//===- bench/BenchUtil.h - Shared helpers for experiment benches -*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small shared helpers for the experiment reproduction binaries (one per
/// paper table/figure; see DESIGN.md's per-experiment index).
///
//===----------------------------------------------------------------------===//

#ifndef YS_BENCH_BENCHUTIL_H
#define YS_BENCH_BENCHUTIL_H

#include "arch/MachineModel.h"
#include "stencil/StencilSpec.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <string>
#include <vector>

namespace ysbench {

/// Prints the standard experiment banner.
inline void banner(const char *Id, const char *Title, const char *Note) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s: %s\n", Id, Title);
  if (Note && Note[0])
    std::printf("%s\n", Note);
  std::printf("==============================================================="
              "=\n");
}

/// The paper's stencil test suite (used by several experiments).
inline std::vector<ys::StencilSpec> paperStencilSuite() {
  return {ys::StencilSpec::heat3d(),   ys::StencilSpec::star3d(2),
          ys::StencilSpec::star3d(4),  ys::StencilSpec::box3d(1),
          ys::StencilSpec::box3d(2),   ys::StencilSpec::longRange(4)};
}

/// The paper's two evaluation platforms.
inline std::vector<ys::MachineModel> paperMachines() {
  return {ys::MachineModel::cascadeLakeSP(), ys::MachineModel::rome()};
}

/// Formats MLUP/s compactly.
inline std::string mlups(double Value) {
  return ys::format("%.0f", Value);
}

/// Formats seconds compactly (ms / us adaptive).
inline std::string seconds(double Value) {
  if (Value >= 1.0)
    return ys::format("%.2f s", Value);
  if (Value >= 1e-3)
    return ys::format("%.2f ms", Value * 1e3);
  return ys::format("%.1f us", Value * 1e6);
}

} // namespace ysbench

#endif // YS_BENCH_BENCHUTIL_H
