//===- bench/BenchUtil.h - Shared helpers for experiment benches -*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small shared helpers for the experiment reproduction binaries (one per
/// paper table/figure; see DESIGN.md's per-experiment index).
///
//===----------------------------------------------------------------------===//

#ifndef YS_BENCH_BENCHUTIL_H
#define YS_BENCH_BENCHUTIL_H

#include "arch/MachineModel.h"
#include "stencil/StencilSpec.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <string>
#include <vector>

namespace ysbench {

/// Prints the standard experiment banner.
inline void banner(const char *Id, const char *Title, const char *Note) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s: %s\n", Id, Title);
  if (Note && Note[0])
    std::printf("%s\n", Note);
  std::printf("==============================================================="
              "=\n");
}

/// The paper's stencil test suite (used by several experiments).
inline std::vector<ys::StencilSpec> paperStencilSuite() {
  return {ys::StencilSpec::heat3d(),   ys::StencilSpec::star3d(2),
          ys::StencilSpec::star3d(4),  ys::StencilSpec::box3d(1),
          ys::StencilSpec::box3d(2),   ys::StencilSpec::longRange(4)};
}

/// The paper's two evaluation platforms.
inline std::vector<ys::MachineModel> paperMachines() {
  return {ys::MachineModel::cascadeLakeSP(), ys::MachineModel::rome()};
}

/// Formats MLUP/s compactly.
inline std::string mlups(double Value) {
  return ys::format("%.0f", Value);
}

/// JSON-lines result file: one flat ys::JsonObjectWriter object per line
/// (the same format the structured-trace facility and tuning cache use),
/// so bench output is machine-readable with the repo's own helpers.  The
/// bench suites write BENCH_<name>.json files through this.
class JsonLinesWriter {
public:
  explicit JsonLinesWriter(const std::string &Path, bool Append = false)
      : F(std::fopen(Path.c_str(), Append ? "a" : "w")) {
    if (!F)
      std::fprintf(stderr, "bench: cannot open %s for writing\n",
                   Path.c_str());
  }
  JsonLinesWriter(const JsonLinesWriter &) = delete;
  JsonLinesWriter &operator=(const JsonLinesWriter &) = delete;
  ~JsonLinesWriter() {
    if (F)
      std::fclose(F);
  }

  bool ok() const { return F != nullptr; }

  /// Writes one finished object as a line and flushes (results survive an
  /// interrupted run).
  void write(const ys::JsonObjectWriter &Obj) {
    if (!F)
      return;
    std::fputs(Obj.str().c_str(), F);
    std::fputc('\n', F);
    std::fflush(F);
  }

private:
  std::FILE *F;
};

/// Formats seconds compactly (ms / us adaptive).
inline std::string seconds(double Value) {
  if (Value >= 1.0)
    return ys::format("%.2f s", Value);
  if (Value >= 1e-3)
    return ys::format("%.2f ms", Value * 1e3);
  return ys::format("%.1f us", Value * 1e6);
}

} // namespace ysbench

#endif // YS_BENCH_BENCHUTIL_H
