//===- bench/bench_e11_ablations.cpp - E11: design-choice ablations ---------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E11 (ablations called out in DESIGN.md): the predicted effect of each
/// optimization knob in isolation on the paper platforms — vector folding,
/// layer-condition target level for blocking, streaming stores, and
/// temporal wavefront blocking.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "codegen/VectorFold.h"
#include "ecm/BlockingSelector.h"
#include "ecm/Roofline.h"
#include "support/Table.h"

using namespace ys;

int main() {
  ysbench::banner("E11", "Ablations: one optimization knob at a time",
                  "All numbers are single-core / saturated predictions on "
                  "the named machine model.");

  GridDims Dims{512, 512, 256};

  // (a) Vector folding.
  std::printf("\n-- (a) SIMD vector folding (single-core MLUP/s) --\n");
  Table TA({"machine", "stencil", "scalar", "1-D fold", "selected fold",
            "selected", "gain vs scalar"});
  for (const MachineModel &M : ysbench::paperMachines()) {
    ECMModel Model(M);
    for (const StencilSpec &S :
         {StencilSpec::heat3d(), StencilSpec::star3d(4)}) {
      KernelConfig Scalar;
      KernelConfig Fold1D;
      Fold1D.VectorFold.X = static_cast<int>(M.Core.simdDoubles());
      KernelConfig Selected;
      Selected.VectorFold = VectorFold::select(S, M);
      double PS = Model.predict(S, Dims, Scalar).MLupsSingleCore;
      double P1 = Model.predict(S, Dims, Fold1D).MLupsSingleCore;
      double PF = Model.predict(S, Dims, Selected).MLupsSingleCore;
      TA.addRow({M.Name, S.name(), ysbench::mlups(PS), ysbench::mlups(P1),
                 Selected.VectorFold.str(), ysbench::mlups(PF),
                 format("%.2fx", PF / PS)});
    }
  }
  TA.print();

  // (b) Layer-condition target level.
  std::printf("\n-- (b) Blocking target level: L2 vs L3 (saturated) --\n");
  Table TB({"machine", "stencil", "target L2 block", "pred", "target L3 "
            "block", "pred"});
  for (const MachineModel &M : ysbench::paperMachines()) {
    ECMModel Model(M);
    BlockingSelector Sel(Model);
    for (const StencilSpec &S :
         {StencilSpec::star3d(2), StencilSpec::star3d(4)}) {
      KernelConfig Base;
      Base.VectorFold.X = static_cast<int>(M.Core.simdDoubles());
      BlockingChoice L2 =
          Sel.selectAnalytic(S, Dims, Base, 1, M.CoresPerSocket);
      BlockingChoice L3 =
          Sel.selectAnalytic(S, Dims, Base, 2, M.CoresPerSocket);
      TB.addRow({M.Name, S.name(), L2.Config.Block.str(),
                 ysbench::mlups(L2.Prediction.MLupsSaturated),
                 L3.Config.Block.str(),
                 ysbench::mlups(L3.Prediction.MLupsSaturated)});
    }
  }
  TB.print();

  // (c) Streaming stores.
  std::printf("\n-- (c) Streaming (non-temporal) stores (saturated) --\n");
  Table TC({"machine", "stencil", "regular", "streaming", "gain"});
  for (const MachineModel &M : ysbench::paperMachines()) {
    ECMModel Model(M);
    for (const StencilSpec &S :
         {StencilSpec::heat3d(), StencilSpec::box3d(2)}) {
      KernelConfig Reg;
      Reg.VectorFold.X = static_cast<int>(M.Core.simdDoubles());
      KernelConfig NT = Reg;
      NT.StreamingStores = true;
      double PR = Model.predict(S, Dims, Reg).MLupsSaturated;
      double PN = Model.predict(S, Dims, NT).MLupsSaturated;
      TC.addRow({M.Name, S.name(), ysbench::mlups(PR), ysbench::mlups(PN),
                 format("%.2fx", PN / PR)});
    }
  }
  TC.print();

  // (d) Wavefront temporal blocking.
  std::printf("\n-- (d) Temporal wavefront (saturated, heat3d 128^3) --\n");
  GridDims WDims{128, 128, 128};
  Table TD({"machine", "depth", "block z", "pred mem B/LUP", "pred"});
  for (const MachineModel &M : ysbench::paperMachines()) {
    ECMModel Model(M);
    for (int Depth : {1, 2, 4}) {
      KernelConfig C;
      C.VectorFold.X = static_cast<int>(M.Core.simdDoubles());
      C.WavefrontDepth = Depth;
      C.Block.Z = 4;
      ECMPrediction P =
          Model.predict(StencilSpec::heat3d(), WDims, C, M.CoresPerSocket);
      TD.addRow({M.Name, format("%d", Depth), format("%ld", C.Block.Z),
                 format("%.1f", P.Traffic.BytesPerLup.back()),
                 ysbench::mlups(P.MLupsSaturated)});
    }
  }
  TD.print();

  // (e) Model choice: ECM vs classic roofline (single core).
  std::printf("\n-- (e) ECM vs roofline, single core (MLUP/s) --\n");
  Table TE({"machine", "stencil", "roofline", "ECM", "roofline/ECM"});
  for (const MachineModel &M : ysbench::paperMachines()) {
    ECMModel Ecm(M);
    RooflineModel Roof(M);
    for (const StencilSpec &S : ysbench::paperStencilSuite()) {
      KernelConfig C;
      C.VectorFold.X = static_cast<int>(M.Core.simdDoubles());
      double R = Roof.predict(S, Dims, C, 1).Mlups;
      double E = Ecm.predict(S, Dims, C).MLupsSingleCore;
      TE.addRow({M.Name, S.name(), ysbench::mlups(R), ysbench::mlups(E),
                 format("%.2f", R / E)});
    }
  }
  TE.print();
  std::printf("Roofline ignores the in-cache transfer chain and "
              "overestimates single-core performance; at saturation the "
              "models coincide (see tests/RooflineTest.cpp).\n");

  // (f) Transfer-overlap hypothesis (serialized vs fully overlapping).
  std::printf("\n-- (f) ECM transfer overlap: serialized vs full "
              "(1 core) --\n");
  Table TF({"machine", "stencil", "serialized", "overlap", "n_sat ser",
            "n_sat ovl"});
  for (const MachineModel &M : ysbench::paperMachines()) {
    ECMModel Serial(M, 0.5, TransferOverlap::None);
    ECMModel Over(M, 0.5, TransferOverlap::Full);
    for (const StencilSpec &S :
         {StencilSpec::heat3d(), StencilSpec::star3d(4)}) {
      KernelConfig C;
      C.VectorFold.X = static_cast<int>(M.Core.simdDoubles());
      ECMPrediction PS = Serial.predict(S, Dims, C);
      ECMPrediction PO = Over.predict(S, Dims, C);
      TF.addRow({M.Name, S.name(), ysbench::mlups(PS.MLupsSingleCore),
                 ysbench::mlups(PO.MLupsSingleCore),
                 format("%u", PS.SaturationCores),
                 format("%u", PO.SaturationCores)});
    }
  }
  TF.print();
  return 0;
}
