//===- bench/bench_e10_ode_endtoend.cpp - E10: end-to-end ODE ---------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E10 (paper Fig.: end-to-end gains): time per step of the default
/// implementation (stage-separate, unblocked) versus the Offsite/YaskSite
/// pick, measured on the host, for several methods and IVPs; plus the
/// predicted per-platform gains on the paper's two machines.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "offsite/Offsite.h"
#include "support/Table.h"

using namespace ys;

int main() {
  ysbench::banner("E10", "End-to-end ODE stepping: default vs tuned",
                  "Tuned = model-ranked best variant (zero tuning runs).");

  MachineModel Clx = MachineModel::cascadeLakeSP();
  ECMModel Model(Clx);
  OffsiteTuner Tuner(Model, 1);

  std::vector<ButcherTableau> Methods = {ButcherTableau::heun2(),
                                         ButcherTableau::classicRK4(),
                                         ButcherTableau::fehlberg45(),
                                         ButcherTableau::dormandPrince54()};

  {
    Heat3DIVP Problem(96);
    std::printf("\n-- %s (sim gain = cache-simulator traffic at the "
                "machine's bandwidth; host = this container) --\n",
                Problem.name().c_str());
    Table T({"method", "default host s/step", "tuned variant",
             "tuned host s/step", "host gain", "sim gain",
             "predicted gain"});
    GridDims ProxyDims{48, 48, 48};
    for (const ButcherTableau &TB : Methods) {
      std::vector<ODEVariant> Vs = Tuner.enumerateRK(TB, Problem);
      std::vector<VariantPrediction> Ranked = Tuner.rank(Vs, Problem);
      const ODEVariant &Default = Vs.front();
      const ODEVariant &Tuned = Ranked.front().Variant;
      double DefaultSec = Tuner.measureSecondsPerStep(Default, Problem);
      double TunedSec = Tuner.measureSecondsPerStep(Tuned, Problem);
      double SimGain =
          Tuner.proxySecondsPerStep(Default, Problem, ProxyDims) /
          Tuner.proxySecondsPerStep(Tuned, Problem, ProxyDims);
      double PredGain = Tuner.predict(Default, Problem).SecondsPerStep /
                        Ranked.front().SecondsPerStep;
      T.addRow({TB.Name, ysbench::seconds(DefaultSec), Tuned.Name,
                ysbench::seconds(TunedSec),
                format("%.2fx", DefaultSec / TunedSec),
                format("%.2fx", SimGain), format("%.2fx", PredGain)});
    }
    T.print();
  }

  {
    InverterChainIVP Problem(200000);
    std::printf("\n-- %s, measured on host --\n", Problem.name().c_str());
    Table T({"method", "default s/step", "tuned variant", "tuned s/step",
             "measured gain"});
    for (const ButcherTableau &TB :
         {ButcherTableau::heun2(), ButcherTableau::classicRK4()}) {
      std::vector<ODEVariant> Vs = Tuner.enumerateRK(TB, Problem);
      std::vector<VariantPrediction> Ranked = Tuner.rank(Vs, Problem);
      double DefaultSec =
          Tuner.measureSecondsPerStep(Vs.front(), Problem);
      double TunedSec =
          Tuner.measureSecondsPerStep(Ranked.front().Variant, Problem);
      T.addRow({TB.Name, ysbench::seconds(DefaultSec),
                Ranked.front().Variant.Name, ysbench::seconds(TunedSec),
                format("%.2fx", DefaultSec / TunedSec)});
    }
    T.print();
  }

  // Predicted per-platform gains at full socket occupancy.
  std::printf("\n-- Predicted socket-level gains (no execution) --\n");
  Table T({"machine", "method", "default pred s/step", "tuned pred s/step",
           "pred gain"});
  Heat3DIVP Big(256);
  for (const MachineModel &M : ysbench::paperMachines()) {
    ECMModel PlatModel(M);
    OffsiteTuner PlatTuner(PlatModel, M.CoresPerSocket);
    for (const ButcherTableau &TB :
         {ButcherTableau::classicRK4(), ButcherTableau::fehlberg45()}) {
      std::vector<ODEVariant> Vs = PlatTuner.enumerateRK(TB, Big);
      std::vector<VariantPrediction> Ranked = PlatTuner.rank(Vs, Big);
      double DefaultSec = PlatTuner.predict(Vs.front(), Big).SecondsPerStep;
      T.addRow({M.Name, TB.Name, ysbench::seconds(DefaultSec),
                ysbench::seconds(Ranked.front().SecondsPerStep),
                format("%.2fx",
                       DefaultSec / Ranked.front().SecondsPerStep)});
    }
  }
  T.print();
  return 0;
}
