//===- bench/bench_e6_blocking.cpp - E6: blocking selection -----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E6 (paper Fig.: model-driven blocking selection): for each stencil and
/// platform, compare the analytic layer-condition choice and the ECM
/// argmax against the unblocked baseline, and validate on the host that
/// the model's pick is at least competitive with the measured best of the
/// same candidate space.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ecm/BlockingSelector.h"
#include "support/Table.h"
#include "tuner/MeasureHarness.h"
#include "tuner/TuningStrategy.h"

using namespace ys;

int main() {
  ysbench::banner("E6", "Blocking parameter selection (model vs search)",
                  "Predicted numbers target the named machine; host "
                  "validation uses this container's CPU.");

  GridDims Dims{512, 512, 256};
  std::vector<StencilSpec> Suite = {StencilSpec::star3d(2),
                                    StencilSpec::star3d(4),
                                    StencilSpec::box3d(2)};

  for (const MachineModel &M : ysbench::paperMachines()) {
    ECMModel Model(M);
    BlockingSelector Sel(Model);
    std::printf("\n-- %s (predicted, %u cores) --\n", M.Name.c_str(),
                M.CoresPerSocket);
    Table T({"stencil", "unblocked", "analytic LC block", "pred",
             "model argmax block", "pred", "gain"});
    for (const StencilSpec &S : Suite) {
      KernelConfig Base;
      Base.VectorFold.X = static_cast<int>(M.Core.simdDoubles());
      ECMPrediction Un = Model.predict(S, Dims, Base, M.CoresPerSocket);
      BlockingChoice Analytic =
          Sel.selectAnalytic(S, Dims, Base, -1, M.CoresPerSocket);
      BlockingChoice Best =
          Sel.selectBest(S, Dims, Base, false, M.CoresPerSocket);
      T.addRow({S.name(), ysbench::mlups(Un.MLupsSaturated),
                Analytic.Config.Block.str(),
                ysbench::mlups(Analytic.Prediction.MLupsSaturated),
                Best.Config.Block.str(),
                ysbench::mlups(Best.Prediction.MLupsSaturated),
                format("%.2fx", Best.Prediction.MLupsSaturated /
                                    Un.MLupsSaturated)});
    }
    T.print();
  }

  // Host validation on a grid that exceeds typical host caches.
  std::printf("\n-- Host validation (this machine, single thread) --\n");
  GridDims HostDims{192, 192, 96};
  MachineModel Clx = MachineModel::cascadeLakeSP();
  ECMModel Model(Clx);
  BlockingSelector Sel(Model);
  Table T({"stencil", "unblocked MLUP/s", "model-pick block",
           "model-pick MLUP/s", "measured-best block",
           "measured-best MLUP/s", "model pick / measured best"});
  for (const StencilSpec &S : Suite) {
    MeasureHarness Harness(S, HostDims, 3, 1);
    MeasureFn Measure = Harness.measurer();
    double Unblocked = Measure(KernelConfig());
    BlockingChoice Pick = Sel.selectBest(S, HostDims, KernelConfig(), false);
    double PickPerf = Measure(Pick.Config);
    ExhaustiveStrategy Ex;
    TuningResult Best = Ex.tune(
        BlockingSelector::candidateSpace(HostDims, KernelConfig(), false),
        Measure);
    T.addRow({S.name(), ysbench::mlups(Unblocked), Pick.Config.Block.str(),
              ysbench::mlups(PickPerf), Best.Best.Block.str(),
              ysbench::mlups(Best.BestMlups),
              format("%.2f", PickPerf / Best.BestMlups)});
  }
  T.print();
  return 0;
}
