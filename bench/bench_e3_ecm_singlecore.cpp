//===- bench/bench_e3_ecm_singlecore.cpp - E3: single-core ECM -------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E3 (paper Fig.: single-core ECM predictions): for each suite stencil on
/// Cascade Lake and Rome, the full ECM decomposition and the predicted
/// single-core performance, cross-checked two ways:
///   * memory B/LUP against the cache simulator (the LIKWID substitute),
///   * MLUP/s against a host-measured run of the kernel executor (absolute
///     host numbers differ from the modeled CPUs; the *shape* across
///     stencils is the comparison target — see EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cachesim/StencilTrace.h"
#include "ecm/ECMModel.h"
#include "support/Table.h"
#include "tuner/MeasureHarness.h"

using namespace ys;

int main() {
  ysbench::banner("E3", "Single-core ECM predictions vs. measurement",
                  "pred = analytic; sim = cache simulator traffic; host = "
                  "executor wall clock on this machine.");

  GridDims Dims{160, 160, 96};
  GridDims SimDims{96, 96, 48}; // Smaller grid for the trace replay.

  for (const MachineModel &M : ysbench::paperMachines()) {
    ECMModel Model(M);
    std::printf("\n-- %s, grid %s (simulated on %s) --\n", M.Name.c_str(),
                Dims.str().c_str(), SimDims.str().c_str());
    Table T({"stencil", "TOL", "TnOL", "TL1L2", "TL2L3", "TL3Mem",
             "TECM cy/CL", "pred B/LUP", "sim B/LUP", "pred MLUP/s",
             "host MLUP/s"});
    for (const StencilSpec &S : ysbench::paperStencilSuite()) {
      KernelConfig C;
      C.VectorFold.X = static_cast<int>(M.Core.simdDoubles());
      ECMPrediction P = Model.predict(S, Dims, C);

      // Simulator cross-check on a reduced grid with proportionally
      // reduced caches (1/4 of each level) to preserve the LC regime.
      MachineModel Mini = M;
      for (CacheLevelModel &L : Mini.Caches)
        L.SizeBytes /= 4;
      CacheHierarchySim Sim = CacheHierarchySim::fromMachine(Mini);
      StencilTraceRunner Runner(S, SimDims, C);
      TraceTraffic Traffic = Runner.run(Sim, 2);

      MeasureHarness Harness(S, Dims, /*Repeats=*/2, /*Sweeps=*/1);
      double HostMlups = Harness.measure(KernelConfig());

      T.addRow({S.name(), format("%.1f", P.InCore.TOL),
                format("%.1f", P.InCore.TnOL), format("%.1f", P.TData[0]),
                format("%.1f", P.TData[1]), format("%.1f", P.TData[2]),
                format("%.1f", P.TECM),
                format("%.1f", P.Traffic.BytesPerLup.back()),
                format("%.1f", Traffic.BytesPerLup.back()),
                ysbench::mlups(P.MLupsSingleCore),
                ysbench::mlups(HostMlups)});
    }
    T.print();
  }
  return 0;
}
