//===- bench/bench_e2_machine_models.cpp - E2: machine models --------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E2 (paper Table 2 analogue): the machine models the ECM analysis runs
/// against — Cascade Lake SP and Rome as in the paper, plus the extra
/// built-ins for breadth.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Table.h"

using namespace ys;

int main() {
  ysbench::banner("E2", "Machine model parameters (Table 2)",
                  "Values follow published ECM machine files; see "
                  "DESIGN.md for the substitution note.");

  Table T({"machine", "SIMD", "cores", "GHz", "L1", "L2", "L3 (sharing)",
           "mem GB/s", "mem B/cy", "L1-L2 B/cy", "L2-L3 B/cy"});
  for (const MachineModel &M : MachineModel::allBuiltin()) {
    const CacheLevelModel &L3 = M.level(2);
    T.addRow({M.Name, format("%u-bit", M.Core.SimdBits),
              format("%u", M.CoresPerSocket),
              format("%.2f", M.Core.FrequencyGHz),
              humanBytes(M.level(0).SizeBytes),
              humanBytes(M.level(1).SizeBytes),
              format("%s (%u cores)", humanBytes(L3.SizeBytes).c_str(),
                     L3.SharingCores),
              format("%.0f", M.Memory.BandwidthGBs),
              format("%.1f", M.memBytesPerCycle()),
              format("%.0f", M.level(0).BytesPerCycleToNext),
              format("%.0f", M.level(1).BytesPerCycleToNext)});
  }
  T.print();

  std::printf("\nValidation: ");
  for (const MachineModel &M : MachineModel::allBuiltin()) {
    std::string Err = M.validate();
    std::printf("%s=%s ", M.Name.c_str(), Err.empty() ? "ok" : Err.c_str());
  }
  std::printf("\n");
  return 0;
}
