//===- bench/bench_e14_gridsize_sweep.cpp - E14: grid-size sweep ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E14 (classic ECM-paper figure): performance vs problem size.  As the
/// grid grows, layer conditions break level by level and the predicted
/// per-LUP traffic steps upward; single-core performance steps downward
/// at the same sizes.  The host run (this machine's real caches) shows
/// the same staircase shifted by the host's capacities.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ecm/ECMModel.h"
#include "support/Table.h"
#include "tuner/MeasureHarness.h"

using namespace ys;

int main() {
  ysbench::banner("E14", "Performance vs grid size (LC staircase)",
                  "Cubic grids; reuse column P(lane)/R(ow)/-(none) per "
                  "level on the CLX model.");

  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  StencilSpec S = StencilSpec::star3d(2);
  KernelConfig C;
  C.VectorFold.X = static_cast<int>(M.Core.simdDoubles());

  Table T({"N", "reuse", "pred mem B/LUP", "pred 1-core MLUP/s",
           "host MLUP/s"});
  for (long N : {16L, 32L, 48L, 64L, 96L, 128L, 192L, 256L, 384L}) {
    GridDims Dims{N, N, N};
    ECMPrediction P = Model.predict(S, Dims, C);
    std::string Reuse;
    for (ReuseClass R : P.Traffic.LevelReuse)
      Reuse += R == ReuseClass::Plane
                   ? 'P'
                   : (R == ReuseClass::Row ? 'R' : '-');
    double Host = 0;
    if (N <= 256) {
      MeasureHarness H(S, Dims, 2, 1);
      Host = H.measure(KernelConfig());
    }
    T.addRow({format("%ld", N), Reuse,
              format("%.1f", P.Traffic.BytesPerLup.back()),
              ysbench::mlups(P.MLupsSingleCore),
              N <= 256 ? ysbench::mlups(Host) : std::string("-")});
  }
  T.print();
  return 0;
}
