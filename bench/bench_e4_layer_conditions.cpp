//===- bench/bench_e4_layer_conditions.cpp - E4: layer conditions ----------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E4 (paper Fig.: layer-condition validation): predicted vs simulated
/// per-boundary data volumes across a y-block sweep.  The layer-condition
/// break points — where a cache level loses plane reuse — must appear at
/// the same block sizes in the model and in the simulator.
///
/// The second section times the sampled fast-mode simulation against the
/// exact replay across the E14 grid-size staircase (below / inside / above
/// the outermost layer-condition break) and gates on the contract the test
/// suite pins: on the largest streaming grid the sampled replay must be
/// >= 10x faster wall-clock with the memory-boundary B/LUP within 10%,
/// and sizes inside the gray zone must fall back to the exact replay.
///
///   --ys-json[=PATH]  write JSON-lines rows (default BENCH_cachesim.json)
///   --ys-smoke        shrunk run for CI (ctest -L sim), structural gates
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cachesim/StencilTrace.h"
#include "ecm/ECMModel.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cmath>
#include <cstring>

using namespace ys;

namespace {

MachineModel miniMachine() {
  MachineModel M = MachineModel::cascadeLakeSP();
  M.Name = "Mini";
  M.Caches[0].SizeBytes = 16 * 1024;
  M.Caches[1].SizeBytes = 128 * 1024;
  M.Caches[2].SizeBytes = 1024 * 1024;
  return M;
}

void breakPointSweep(const MachineModel &M) {
  ECMModel Model(M);
  GridDims Dims{128, 128, 32};

  for (int Radius : {1, 2, 4}) {
    StencilSpec S = StencilSpec::star3d(Radius);
    std::printf("\n-- %s, grid %s --\n", S.name().c_str(),
                Dims.str().c_str());
    Table T({"y-block", "reuse", "pred L1-L2", "sim L1-L2", "pred L2-L3",
             "sim L2-L3", "pred mem", "sim mem"});
    for (long By : {0L, 64L, 32L, 16L, 8L, 4L}) {
      if (By > Dims.Ny)
        continue;
      KernelConfig C;
      C.Block.Y = By;
      ECMPrediction P = Model.predict(S, Dims, C);
      CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
      TraceTraffic Traffic = StencilTraceRunner(S, Dims, C).run(Sim, 2);
      std::string Reuse;
      for (ReuseClass R : P.Traffic.LevelReuse)
        Reuse += R == ReuseClass::Plane
                     ? 'P'
                     : (R == ReuseClass::Row ? 'R' : '-');
      T.addRow({By == 0 ? std::string("full") : format("%ld", By), Reuse,
                format("%.1f", P.Traffic.BytesPerLup[0]),
                format("%.1f", Traffic.BytesPerLup[0]),
                format("%.1f", P.Traffic.BytesPerLup[1]),
                format("%.1f", Traffic.BytesPerLup[1]),
                format("%.1f", P.Traffic.BytesPerLup[2]),
                format("%.1f", Traffic.BytesPerLup[2])});
    }
    T.print();
  }
}

struct SampledRow {
  GridDims Dims;
  double FullSeconds = 0;
  double SampledSeconds = 0;
  double WallSpeedup = 0;
  double StructSpeedup = 0;
  double FullMem = 0;
  double SampledMem = 0;
  double DeltaPct = 0;
  bool Sampled = false;
  std::string FallbackReason;
};

SampledRow runSampledCase(const MachineModel &M, const StencilSpec &S,
                          GridDims Dims, int Sweeps) {
  SampledRow Row;
  Row.Dims = Dims;
  StencilTraceRunner Runner(S, Dims, KernelConfig());

  CacheHierarchySim FullSim = CacheHierarchySim::fromMachine(M);
  Timer FullTimer;
  TraceTraffic Full = Runner.run(FullSim, Sweeps);
  Row.FullSeconds = FullTimer.seconds();

  CacheHierarchySim SampledSim = CacheHierarchySim::fromMachine(M);
  Timer SampledTimer;
  TraceTraffic Sampled = Runner.run(SampledSim, Sweeps, SimMode::Sampled);
  Row.SampledSeconds = SampledTimer.seconds();

  Row.WallSpeedup =
      Row.SampledSeconds > 0 ? Row.FullSeconds / Row.SampledSeconds : 0;
  Row.StructSpeedup =
      Sampled.ReplayedLups
          ? static_cast<double>(Sampled.Lups) / Sampled.ReplayedLups
          : 0;
  Row.FullMem = Full.BytesPerLup.back();
  Row.SampledMem = Sampled.BytesPerLup.back();
  Row.DeltaPct = Row.FullMem > 0
                     ? 100.0 * std::abs(Row.SampledMem - Row.FullMem) /
                           Row.FullMem
                     : 0;
  Row.Sampled = Sampled.Sampled;
  Row.FallbackReason = Sampled.FallbackReason;
  return Row;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  bool WriteJson = false;
  std::string JsonPath = "BENCH_cachesim.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--ys-smoke") == 0)
      Smoke = true;
    else if (std::strcmp(argv[I], "--ys-json") == 0)
      WriteJson = true;
    else if (std::strncmp(argv[I], "--ys-json=", 10) == 0) {
      WriteJson = true;
      JsonPath = argv[I] + 10;
    }
  }

  ysbench::banner("E4", "Layer-condition break points (block-size sweep)",
                  "Mini machine (16K/128K/1M) so the simulated grid stays "
                  "small; reuse column: per-level P(lane)/R(ow)/-(none).");

  MachineModel M = miniMachine();
  if (!Smoke)
    breakPointSweep(M);

  // Full vs sampled replay across the E14 grid-size staircase.  64^3 has
  // too few z-planes for an interior steady-state window, 128x128 sits in
  // the outermost gray zone — both must fall back; the streaming sizes
  // must sample and agree.
  StencilSpec S = StencilSpec::star3d(2);
  const int Sweeps = 2;
  std::vector<GridDims> Grids;
  if (Smoke)
    Grids = {GridDims{64, 64, 64}, GridDims{96, 96, 96}};
  else
    Grids = {GridDims{64, 64, 64}, GridDims{96, 96, 96},
             GridDims{128, 128, 96}, GridDims{192, 192, 128}};

  std::printf("\n-- %s, full vs sampled replay (%d sweeps) --\n",
              S.name().c_str(), Sweeps);
  Table T({"grid", "full", "sampled", "speedup", "replay", "full mem",
           "sampled mem", "delta", "mode"});
  std::vector<SampledRow> Rows;
  for (const GridDims &Dims : Grids) {
    SampledRow Row = runSampledCase(M, S, Dims, Sweeps);
    Rows.push_back(Row);
    T.addRow({Dims.str(), ysbench::seconds(Row.FullSeconds),
              ysbench::seconds(Row.SampledSeconds),
              format("%.1fx", Row.WallSpeedup),
              Row.Sampled ? format("1/%.0f", Row.StructSpeedup)
                          : std::string("all"),
              format("%.1f", Row.FullMem), format("%.1f", Row.SampledMem),
              format("%.1f%%", Row.DeltaPct),
              Row.Sampled ? std::string("sampled")
                          : std::string("fallback")});
  }
  T.print();
  for (const SampledRow &Row : Rows)
    if (!Row.Sampled)
      std::printf("  %s fallback: %s\n", Row.Dims.str().c_str(),
                  Row.FallbackReason.c_str());

  if (WriteJson) {
    ysbench::JsonLinesWriter Json(JsonPath);
    for (const SampledRow &Row : Rows) {
      JsonObjectWriter Obj;
      Obj.field("bench", "cachesim")
          .field("stencil", S.name())
          .field("grid", Row.Dims.str())
          .field("sweeps", static_cast<long>(Sweeps))
          .field("full_seconds", Row.FullSeconds)
          .field("sampled_seconds", Row.SampledSeconds)
          .field("wall_speedup", Row.WallSpeedup)
          .field("struct_speedup", Row.StructSpeedup)
          .field("full_mem_blup", Row.FullMem)
          .field("sampled_mem_blup", Row.SampledMem)
          .field("delta_pct", Row.DeltaPct)
          .field("sampled", Row.Sampled);
      if (!Row.FallbackReason.empty())
        Obj.field("fallback_reason", Row.FallbackReason);
      Json.write(Obj);
    }
  }

  // Gates.  Fallback correctness first: the staircase's ambiguous sizes
  // must decline sampling.
  int Failures = 0;
  if (Rows[0].Sampled) {
    std::fprintf(stderr, "GATE: %s should fall back (too few units)\n",
                 Rows[0].Dims.str().c_str());
    ++Failures;
  }
  if (!Smoke && Rows[2].Sampled) {
    std::fprintf(stderr, "GATE: %s should fall back (gray zone)\n",
                 Rows[2].Dims.str().c_str());
    ++Failures;
  }
  // Accuracy and speed on the streaming sizes.  The smoke run gates on
  // the machine-independent structural speedup; the full run additionally
  // gates wall clock >= 10x on the largest grid.
  const SampledRow &Smallest = Rows[1];
  const SampledRow &Largest = Rows.back();
  for (const SampledRow *Row : {&Smallest, &Largest}) {
    if (!Row->Sampled) {
      std::fprintf(stderr, "GATE: %s unexpectedly fell back: %s\n",
                   Row->Dims.str().c_str(), Row->FallbackReason.c_str());
      ++Failures;
      continue;
    }
    if (Row->DeltaPct > 10.0) {
      std::fprintf(stderr, "GATE: %s memory delta %.1f%% > 10%%\n",
                   Row->Dims.str().c_str(), Row->DeltaPct);
      ++Failures;
    }
    if (Row->StructSpeedup < 5.0) {
      std::fprintf(stderr, "GATE: %s structural speedup %.1fx < 5x\n",
                   Row->Dims.str().c_str(), Row->StructSpeedup);
      ++Failures;
    }
  }
  if (!Smoke && Largest.Sampled && Largest.WallSpeedup < 10.0) {
    std::fprintf(stderr, "GATE: %s wall speedup %.1fx < 10x\n",
                 Largest.Dims.str().c_str(), Largest.WallSpeedup);
    ++Failures;
  }
  if (Failures) {
    std::fprintf(stderr, "%d gate failure(s)\n", Failures);
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
