//===- bench/bench_e4_layer_conditions.cpp - E4: layer conditions ----------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E4 (paper Fig.: layer-condition validation): predicted vs simulated
/// per-boundary data volumes across a y-block sweep.  The layer-condition
/// break points — where a cache level loses plane reuse — must appear at
/// the same block sizes in the model and in the simulator.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cachesim/StencilTrace.h"
#include "ecm/ECMModel.h"
#include "support/Table.h"

using namespace ys;

int main() {
  ysbench::banner("E4", "Layer-condition break points (block-size sweep)",
                  "Mini machine (16K/128K/1M) so the simulated grid stays "
                  "small; reuse column: per-level P(lane)/R(ow)/-(none).");

  MachineModel M = MachineModel::cascadeLakeSP();
  M.Name = "Mini";
  M.Caches[0].SizeBytes = 16 * 1024;
  M.Caches[1].SizeBytes = 128 * 1024;
  M.Caches[2].SizeBytes = 1024 * 1024;
  ECMModel Model(M);
  GridDims Dims{128, 128, 32};

  for (int Radius : {1, 2, 4}) {
    StencilSpec S = StencilSpec::star3d(Radius);
    std::printf("\n-- %s, grid %s --\n", S.name().c_str(),
                Dims.str().c_str());
    Table T({"y-block", "reuse", "pred L1-L2", "sim L1-L2", "pred L2-L3",
             "sim L2-L3", "pred mem", "sim mem"});
    for (long By : {0L, 64L, 32L, 16L, 8L, 4L}) {
      if (By > Dims.Ny)
        continue;
      KernelConfig C;
      C.Block.Y = By;
      ECMPrediction P = Model.predict(S, Dims, C);
      CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
      TraceTraffic Traffic = StencilTraceRunner(S, Dims, C).run(Sim, 2);
      std::string Reuse;
      for (ReuseClass R : P.Traffic.LevelReuse)
        Reuse += R == ReuseClass::Plane
                     ? 'P'
                     : (R == ReuseClass::Row ? 'R' : '-');
      T.addRow({By == 0 ? std::string("full") : format("%ld", By), Reuse,
                format("%.1f", P.Traffic.BytesPerLup[0]),
                format("%.1f", Traffic.BytesPerLup[0]),
                format("%.1f", P.Traffic.BytesPerLup[1]),
                format("%.1f", Traffic.BytesPerLup[1]),
                format("%.1f", P.Traffic.BytesPerLup[2]),
                format("%.1f", Traffic.BytesPerLup[2])});
    }
    T.print();
  }
  return 0;
}
