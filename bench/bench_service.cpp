//===- bench/bench_service.cpp - Tuning-service throughput ------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Throughput of the long-lived tuning service (service/TuningService.h)
/// under concurrent load, in three scenarios:
///
///   model    — ECM predict queries from several threads (admission
///              control: these never touch the trial lane);
///   dedup    — many threads requesting the same few measurements: the
///              in-flight coalescing means K distinct configs cost exactly
///              K timed trials regardless of the request count;
///   cachehit — repeat measurements answered by the sharded front.
///
/// Reports queries/sec per scenario and the dedup ratio (requests answered
/// without a trial / total requests).  `--ys-json=PATH` writes JSON-lines
/// results (default BENCH_service.json); `--ys-smoke` shrinks the run for
/// CI (ctest -L perf).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "service/TuningService.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstring>
#include <thread>
#include <vector>

using namespace ys;

namespace {

struct Scenario {
  std::string Name;
  unsigned Threads = 0;
  unsigned long long Queries = 0;
  double Seconds = 0;
  double Qps = 0;
};

Scenario runModelScenario(TuningService &Service, unsigned Threads,
                          unsigned QueriesPerThread) {
  Scenario R{"model", Threads, 0, 0, 0};
  Timer T;
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&, W] {
      for (unsigned I = 0; I < QueriesPerThread; ++I) {
        PredictQuery Q;
        Q.Stencil = (I + W) % 2 ? "heat3d" : "star3d:2";
        Q.Dims = GridDims{128 + 16 * static_cast<long>(I % 4), 64, 64};
        Q.Cores = 1 + (I % 4);
        auto ROr = Service.predict(Q);
        if (!ROr)
          std::fprintf(stderr, "predict failed: %s\n",
                       ROr.takeError().message().c_str());
      }
    });
  for (std::thread &W : Workers)
    W.join();
  R.Seconds = T.seconds();
  R.Queries = static_cast<unsigned long long>(Threads) * QueriesPerThread;
  R.Qps = R.Queries / R.Seconds;
  return R;
}

MeasureQuery benchQuery(long Bx) {
  MeasureQuery Q;
  Q.Stencil = "heat3d";
  Q.Dims = GridDims{32, 16, 16};
  Q.Config.Block.X = Bx;
  Q.Backend = "plan";
  return Q;
}

Scenario runMeasureScenario(TuningService &Service, unsigned Threads,
                            const std::vector<long> &Configs) {
  Scenario R{"dedup", Threads, 0, 0, 0};
  Timer T;
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&] {
      for (long Bx : Configs)
        if (auto ROr = Service.measure(benchQuery(Bx)); !ROr)
          std::fprintf(stderr, "measure failed: %s\n",
                       ROr.takeError().message().c_str());
    });
  for (std::thread &W : Workers)
    W.join();
  R.Seconds = T.seconds();
  R.Queries = static_cast<unsigned long long>(Threads) * Configs.size();
  R.Qps = R.Queries / R.Seconds;
  return R;
}

Scenario runCacheHitScenario(TuningService &Service, unsigned Threads,
                             unsigned QueriesPerThread,
                             const std::vector<long> &Configs) {
  Scenario R{"cachehit", Threads, 0, 0, 0};
  Timer T;
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&] {
      for (unsigned I = 0; I < QueriesPerThread; ++I)
        if (auto ROr = Service.measure(benchQuery(Configs[I % Configs.size()]));
            !ROr)
          std::fprintf(stderr, "measure failed: %s\n",
                       ROr.takeError().message().c_str());
    });
  for (std::thread &W : Workers)
    W.join();
  R.Seconds = T.seconds();
  R.Queries = static_cast<unsigned long long>(Threads) * QueriesPerThread;
  R.Qps = R.Queries / R.Seconds;
  return R;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string JsonPath = "BENCH_service.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--ys-smoke") == 0)
      Smoke = true;
    else if (std::strncmp(argv[I], "--ys-json=", 10) == 0)
      JsonPath = argv[I] + 10;
  }

  ysbench::banner("SERVICE", "Tuning-service throughput under concurrency",
                  "Model queries bypass the trial lane; identical "
                  "measurements coalesce onto one trial.");

  const unsigned Threads = Smoke ? 2 : 8;
  const unsigned ModelQueries = Smoke ? 25 : 250;
  const unsigned CacheHitQueries = Smoke ? 50 : 1000;
  const std::vector<long> Configs =
      Smoke ? std::vector<long>{8, 16} : std::vector<long>{8, 16, 32, 64};

  ServiceOptions SO;
  SO.Repeats = 1;
  SO.SweepsPerRepeat = 1;
  TuningService Service(SO);

  Scenario Model = runModelScenario(Service, Threads, ModelQueries);
  Scenario Dedup = runMeasureScenario(Service, Threads, Configs);
  ServiceStats AfterDedup = Service.stats();
  Scenario CacheHit =
      runCacheHitScenario(Service, Threads, CacheHitQueries, Configs);
  ServiceStats Final = Service.stats();

  double DedupRatio =
      AfterDedup.MeasureRequests
          ? 1.0 - static_cast<double>(AfterDedup.TimedTrials) /
                      static_cast<double>(AfterDedup.MeasureRequests)
          : 0.0;

  Table T({"scenario", "threads", "queries", "wall", "queries/s"});
  for (const Scenario &S : {Model, Dedup, CacheHit})
    T.addRow({S.Name, format("%u", S.Threads), format("%llu", S.Queries),
              ysbench::seconds(S.Seconds), format("%.0f", S.Qps)});
  std::printf("%s", T.render().c_str());
  std::printf("\ndedup: %llu measure requests -> %llu timed trials "
              "(%llu coalesced, %llu cache hits); dedup ratio %.3f\n",
              AfterDedup.MeasureRequests, AfterDedup.TimedTrials,
              AfterDedup.Coalesced, AfterDedup.CacheHits, DedupRatio);
  std::printf("final: %llu kernel runs for %llu measure requests, "
              "%zu cache entries\n",
              Final.KernelRuns, Final.MeasureRequests, Final.CacheEntries);

  ysbench::JsonLinesWriter Json(JsonPath);
  for (const Scenario &S : {Model, Dedup, CacheHit}) {
    JsonObjectWriter Obj;
    Obj.field("bench", "service")
        .field("scenario", S.Name)
        .field("threads", static_cast<long>(S.Threads))
        .field("queries", S.Queries)
        .field("seconds", S.Seconds)
        .field("qps", S.Qps);
    Json.write(Obj);
  }
  JsonObjectWriter Summary;
  Summary.field("bench", "service")
      .field("scenario", "summary")
      .field("measure_requests", AfterDedup.MeasureRequests)
      .field("timed_trials", AfterDedup.TimedTrials)
      .field("coalesced", AfterDedup.Coalesced)
      .field("cache_hits", Final.CacheHits)
      .field("kernel_runs", Final.KernelRuns)
      .field("dedup_ratio", DedupRatio);
  Json.write(Summary);
  std::printf("json: %s\n", JsonPath.c_str());

  // The dedup guarantee is structural; fail loudly if it ever regresses.
  if (Final.TimedTrials != Configs.size()) {
    std::fprintf(stderr,
                 "FAIL: expected exactly %zu timed trials, got %llu\n",
                 Configs.size(), Final.TimedTrials);
    return 1;
  }
  return 0;
}
