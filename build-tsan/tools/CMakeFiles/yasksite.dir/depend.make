# Empty dependencies file for yasksite.
# This may be replaced when dependencies are built.
