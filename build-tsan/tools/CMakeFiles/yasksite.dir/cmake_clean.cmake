file(REMOVE_RECURSE
  "CMakeFiles/yasksite.dir/yasksite.cpp.o"
  "CMakeFiles/yasksite.dir/yasksite.cpp.o.d"
  "yasksite"
  "yasksite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yasksite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
