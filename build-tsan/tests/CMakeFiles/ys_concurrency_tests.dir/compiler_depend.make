# Empty compiler generated dependencies file for ys_concurrency_tests.
# This may be replaced when dependencies are built.
