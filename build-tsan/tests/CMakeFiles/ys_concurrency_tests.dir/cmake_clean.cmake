file(REMOVE_RECURSE
  "CMakeFiles/ys_concurrency_tests.dir/ExecutorConcurrencyTest.cpp.o"
  "CMakeFiles/ys_concurrency_tests.dir/ExecutorConcurrencyTest.cpp.o.d"
  "CMakeFiles/ys_concurrency_tests.dir/ThreadPoolTest.cpp.o"
  "CMakeFiles/ys_concurrency_tests.dir/ThreadPoolTest.cpp.o.d"
  "ys_concurrency_tests"
  "ys_concurrency_tests.pdb"
  "ys_concurrency_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_concurrency_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
