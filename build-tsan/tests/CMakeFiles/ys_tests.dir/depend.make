# Empty dependencies file for ys_tests.
# This may be replaced when dependencies are built.
