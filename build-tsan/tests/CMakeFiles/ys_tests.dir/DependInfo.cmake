
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AdaptiveTest.cpp" "tests/CMakeFiles/ys_tests.dir/AdaptiveTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/AdaptiveTest.cpp.o.d"
  "/root/repo/tests/ArchTest.cpp" "tests/CMakeFiles/ys_tests.dir/ArchTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/ArchTest.cpp.o.d"
  "/root/repo/tests/BlockingSelectorTest.cpp" "tests/CMakeFiles/ys_tests.dir/BlockingSelectorTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/BlockingSelectorTest.cpp.o.d"
  "/root/repo/tests/ButcherTableauTest.cpp" "tests/CMakeFiles/ys_tests.dir/ButcherTableauTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/ButcherTableauTest.cpp.o.d"
  "/root/repo/tests/CacheSimTest.cpp" "tests/CMakeFiles/ys_tests.dir/CacheSimTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/CacheSimTest.cpp.o.d"
  "/root/repo/tests/DatabaseTest.cpp" "tests/CMakeFiles/ys_tests.dir/DatabaseTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/DatabaseTest.cpp.o.d"
  "/root/repo/tests/DomainDecompositionTest.cpp" "tests/CMakeFiles/ys_tests.dir/DomainDecompositionTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/DomainDecompositionTest.cpp.o.d"
  "/root/repo/tests/DriverTest.cpp" "tests/CMakeFiles/ys_tests.dir/DriverTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/DriverTest.cpp.o.d"
  "/root/repo/tests/ECMModelTest.cpp" "tests/CMakeFiles/ys_tests.dir/ECMModelTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/ECMModelTest.cpp.o.d"
  "/root/repo/tests/EdgeCasesTest.cpp" "tests/CMakeFiles/ys_tests.dir/EdgeCasesTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/EdgeCasesTest.cpp.o.d"
  "/root/repo/tests/ExplicitRKTest.cpp" "tests/CMakeFiles/ys_tests.dir/ExplicitRKTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/ExplicitRKTest.cpp.o.d"
  "/root/repo/tests/FuzzPropertyTest.cpp" "tests/CMakeFiles/ys_tests.dir/FuzzPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/FuzzPropertyTest.cpp.o.d"
  "/root/repo/tests/GridTest.cpp" "tests/CMakeFiles/ys_tests.dir/GridTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/GridTest.cpp.o.d"
  "/root/repo/tests/IVPTest.cpp" "tests/CMakeFiles/ys_tests.dir/IVPTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/IVPTest.cpp.o.d"
  "/root/repo/tests/IntegrationTest.cpp" "tests/CMakeFiles/ys_tests.dir/IntegrationTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/IntegrationTest.cpp.o.d"
  "/root/repo/tests/KernelExecutorTest.cpp" "tests/CMakeFiles/ys_tests.dir/KernelExecutorTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/KernelExecutorTest.cpp.o.d"
  "/root/repo/tests/ModelVsSimTest.cpp" "tests/CMakeFiles/ys_tests.dir/ModelVsSimTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/ModelVsSimTest.cpp.o.d"
  "/root/repo/tests/MultiCoreSimTest.cpp" "tests/CMakeFiles/ys_tests.dir/MultiCoreSimTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/MultiCoreSimTest.cpp.o.d"
  "/root/repo/tests/OffsiteTest.cpp" "tests/CMakeFiles/ys_tests.dir/OffsiteTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/OffsiteTest.cpp.o.d"
  "/root/repo/tests/PIRKTest.cpp" "tests/CMakeFiles/ys_tests.dir/PIRKTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/PIRKTest.cpp.o.d"
  "/root/repo/tests/ParserTest.cpp" "tests/CMakeFiles/ys_tests.dir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/RegistryTest.cpp" "tests/CMakeFiles/ys_tests.dir/RegistryTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/RegistryTest.cpp.o.d"
  "/root/repo/tests/ReportTest.cpp" "tests/CMakeFiles/ys_tests.dir/ReportTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/ReportTest.cpp.o.d"
  "/root/repo/tests/RooflineTest.cpp" "tests/CMakeFiles/ys_tests.dir/RooflineTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/RooflineTest.cpp.o.d"
  "/root/repo/tests/SmallPiecesTest.cpp" "tests/CMakeFiles/ys_tests.dir/SmallPiecesTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/SmallPiecesTest.cpp.o.d"
  "/root/repo/tests/SolutionTest.cpp" "tests/CMakeFiles/ys_tests.dir/SolutionTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/SolutionTest.cpp.o.d"
  "/root/repo/tests/SourceEmitterTest.cpp" "tests/CMakeFiles/ys_tests.dir/SourceEmitterTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/SourceEmitterTest.cpp.o.d"
  "/root/repo/tests/StabilityTest.cpp" "tests/CMakeFiles/ys_tests.dir/StabilityTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/StabilityTest.cpp.o.d"
  "/root/repo/tests/StencilBundleTest.cpp" "tests/CMakeFiles/ys_tests.dir/StencilBundleTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/StencilBundleTest.cpp.o.d"
  "/root/repo/tests/StencilExprTest.cpp" "tests/CMakeFiles/ys_tests.dir/StencilExprTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/StencilExprTest.cpp.o.d"
  "/root/repo/tests/StencilSpecTest.cpp" "tests/CMakeFiles/ys_tests.dir/StencilSpecTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/StencilSpecTest.cpp.o.d"
  "/root/repo/tests/StencilTraceTest.cpp" "tests/CMakeFiles/ys_tests.dir/StencilTraceTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/StencilTraceTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/ys_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/TuningStrategyTest.cpp" "tests/CMakeFiles/ys_tests.dir/TuningStrategyTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/TuningStrategyTest.cpp.o.d"
  "/root/repo/tests/VectorFoldTest.cpp" "tests/CMakeFiles/ys_tests.dir/VectorFoldTest.cpp.o" "gcc" "tests/CMakeFiles/ys_tests.dir/VectorFoldTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/solution/CMakeFiles/ys_solution.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/driver/CMakeFiles/ys_driver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/frontend/CMakeFiles/ys_frontend.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/offsite/CMakeFiles/ys_offsite.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ode/CMakeFiles/ys_ode.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tuner/CMakeFiles/ys_tuner.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ecm/CMakeFiles/ys_ecm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cachesim/CMakeFiles/ys_cachesim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/codegen/CMakeFiles/ys_codegen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stencil/CMakeFiles/ys_stencil.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/arch/CMakeFiles/ys_arch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/ys_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
