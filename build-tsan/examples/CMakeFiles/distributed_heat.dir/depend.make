# Empty dependencies file for distributed_heat.
# This may be replaced when dependencies are built.
