file(REMOVE_RECURSE
  "CMakeFiles/distributed_heat.dir/distributed_heat.cpp.o"
  "CMakeFiles/distributed_heat.dir/distributed_heat.cpp.o.d"
  "distributed_heat"
  "distributed_heat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
