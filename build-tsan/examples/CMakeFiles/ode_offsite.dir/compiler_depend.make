# Empty compiler generated dependencies file for ode_offsite.
# This may be replaced when dependencies are built.
