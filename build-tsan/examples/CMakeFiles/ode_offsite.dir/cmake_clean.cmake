file(REMOVE_RECURSE
  "CMakeFiles/ode_offsite.dir/ode_offsite.cpp.o"
  "CMakeFiles/ode_offsite.dir/ode_offsite.cpp.o.d"
  "ode_offsite"
  "ode_offsite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_offsite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
