# Empty compiler generated dependencies file for heat3d_tuning.
# This may be replaced when dependencies are built.
