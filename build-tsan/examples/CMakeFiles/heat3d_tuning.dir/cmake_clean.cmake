file(REMOVE_RECURSE
  "CMakeFiles/heat3d_tuning.dir/heat3d_tuning.cpp.o"
  "CMakeFiles/heat3d_tuning.dir/heat3d_tuning.cpp.o.d"
  "heat3d_tuning"
  "heat3d_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat3d_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
