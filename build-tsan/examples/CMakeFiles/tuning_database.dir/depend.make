# Empty dependencies file for tuning_database.
# This may be replaced when dependencies are built.
