file(REMOVE_RECURSE
  "CMakeFiles/tuning_database.dir/tuning_database.cpp.o"
  "CMakeFiles/tuning_database.dir/tuning_database.cpp.o.d"
  "tuning_database"
  "tuning_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
