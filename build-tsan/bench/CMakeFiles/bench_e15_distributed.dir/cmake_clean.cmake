file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_distributed.dir/bench_e15_distributed.cpp.o"
  "CMakeFiles/bench_e15_distributed.dir/bench_e15_distributed.cpp.o.d"
  "bench_e15_distributed"
  "bench_e15_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
