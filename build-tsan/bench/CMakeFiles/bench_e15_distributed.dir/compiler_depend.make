# Empty compiler generated dependencies file for bench_e15_distributed.
# This may be replaced when dependencies are built.
