# Empty dependencies file for bench_e8_tuning_cost.
# This may be replaced when dependencies are built.
