file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_ode_endtoend.dir/bench_e10_ode_endtoend.cpp.o"
  "CMakeFiles/bench_e10_ode_endtoend.dir/bench_e10_ode_endtoend.cpp.o.d"
  "bench_e10_ode_endtoend"
  "bench_e10_ode_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_ode_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
