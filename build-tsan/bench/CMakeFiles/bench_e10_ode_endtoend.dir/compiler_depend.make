# Empty compiler generated dependencies file for bench_e10_ode_endtoend.
# This may be replaced when dependencies are built.
