file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_wavefront.dir/bench_e7_wavefront.cpp.o"
  "CMakeFiles/bench_e7_wavefront.dir/bench_e7_wavefront.cpp.o.d"
  "bench_e7_wavefront"
  "bench_e7_wavefront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_wavefront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
