# Empty dependencies file for bench_e4_layer_conditions.
# This may be replaced when dependencies are built.
