file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_layer_conditions.dir/bench_e4_layer_conditions.cpp.o"
  "CMakeFiles/bench_e4_layer_conditions.dir/bench_e4_layer_conditions.cpp.o.d"
  "bench_e4_layer_conditions"
  "bench_e4_layer_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_layer_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
