# Empty dependencies file for bench_e14_gridsize_sweep.
# This may be replaced when dependencies are built.
