# Empty dependencies file for bench_e13_fusion.
# This may be replaced when dependencies are built.
