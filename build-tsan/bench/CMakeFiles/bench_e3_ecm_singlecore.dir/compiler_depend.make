# Empty compiler generated dependencies file for bench_e3_ecm_singlecore.
# This may be replaced when dependencies are built.
