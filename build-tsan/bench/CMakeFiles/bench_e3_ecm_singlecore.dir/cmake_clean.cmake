file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_ecm_singlecore.dir/bench_e3_ecm_singlecore.cpp.o"
  "CMakeFiles/bench_e3_ecm_singlecore.dir/bench_e3_ecm_singlecore.cpp.o.d"
  "bench_e3_ecm_singlecore"
  "bench_e3_ecm_singlecore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_ecm_singlecore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
