file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_machine_models.dir/bench_e2_machine_models.cpp.o"
  "CMakeFiles/bench_e2_machine_models.dir/bench_e2_machine_models.cpp.o.d"
  "bench_e2_machine_models"
  "bench_e2_machine_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_machine_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
