# Empty dependencies file for bench_e2_machine_models.
# This may be replaced when dependencies are built.
