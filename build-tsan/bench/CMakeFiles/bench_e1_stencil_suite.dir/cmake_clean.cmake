file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_stencil_suite.dir/bench_e1_stencil_suite.cpp.o"
  "CMakeFiles/bench_e1_stencil_suite.dir/bench_e1_stencil_suite.cpp.o.d"
  "bench_e1_stencil_suite"
  "bench_e1_stencil_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_stencil_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
