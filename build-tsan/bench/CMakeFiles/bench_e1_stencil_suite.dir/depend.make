# Empty dependencies file for bench_e1_stencil_suite.
# This may be replaced when dependencies are built.
