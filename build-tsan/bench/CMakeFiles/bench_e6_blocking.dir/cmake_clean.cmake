file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_blocking.dir/bench_e6_blocking.cpp.o"
  "CMakeFiles/bench_e6_blocking.dir/bench_e6_blocking.cpp.o.d"
  "bench_e6_blocking"
  "bench_e6_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
