# Empty dependencies file for bench_e9_offsite_ranking.
# This may be replaced when dependencies are built.
