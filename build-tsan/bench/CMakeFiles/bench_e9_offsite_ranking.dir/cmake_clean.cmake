file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_offsite_ranking.dir/bench_e9_offsite_ranking.cpp.o"
  "CMakeFiles/bench_e9_offsite_ranking.dir/bench_e9_offsite_ranking.cpp.o.d"
  "bench_e9_offsite_ranking"
  "bench_e9_offsite_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_offsite_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
