# Empty compiler generated dependencies file for bench_e12_method_selection.
# This may be replaced when dependencies are built.
