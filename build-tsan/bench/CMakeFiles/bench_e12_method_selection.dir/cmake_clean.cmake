file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_method_selection.dir/bench_e12_method_selection.cpp.o"
  "CMakeFiles/bench_e12_method_selection.dir/bench_e12_method_selection.cpp.o.d"
  "bench_e12_method_selection"
  "bench_e12_method_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_method_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
