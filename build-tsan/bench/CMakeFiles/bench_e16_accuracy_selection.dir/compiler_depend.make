# Empty compiler generated dependencies file for bench_e16_accuracy_selection.
# This may be replaced when dependencies are built.
