file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_accuracy_selection.dir/bench_e16_accuracy_selection.cpp.o"
  "CMakeFiles/bench_e16_accuracy_selection.dir/bench_e16_accuracy_selection.cpp.o.d"
  "bench_e16_accuracy_selection"
  "bench_e16_accuracy_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_accuracy_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
