
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e11_ablations.cpp" "bench/CMakeFiles/bench_e11_ablations.dir/bench_e11_ablations.cpp.o" "gcc" "bench/CMakeFiles/bench_e11_ablations.dir/bench_e11_ablations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/solution/CMakeFiles/ys_solution.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/frontend/CMakeFiles/ys_frontend.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/offsite/CMakeFiles/ys_offsite.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ode/CMakeFiles/ys_ode.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tuner/CMakeFiles/ys_tuner.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ecm/CMakeFiles/ys_ecm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cachesim/CMakeFiles/ys_cachesim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/codegen/CMakeFiles/ys_codegen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stencil/CMakeFiles/ys_stencil.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/arch/CMakeFiles/ys_arch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/ys_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
