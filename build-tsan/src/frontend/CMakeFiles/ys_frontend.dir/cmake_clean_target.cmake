file(REMOVE_RECURSE
  "libys_frontend.a"
)
