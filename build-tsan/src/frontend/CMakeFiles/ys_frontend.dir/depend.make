# Empty dependencies file for ys_frontend.
# This may be replaced when dependencies are built.
