# Empty compiler generated dependencies file for ys_frontend.
# This may be replaced when dependencies are built.
