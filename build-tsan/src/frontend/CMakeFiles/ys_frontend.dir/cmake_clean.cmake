file(REMOVE_RECURSE
  "CMakeFiles/ys_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/ys_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/ys_frontend.dir/Parser.cpp.o"
  "CMakeFiles/ys_frontend.dir/Parser.cpp.o.d"
  "libys_frontend.a"
  "libys_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
