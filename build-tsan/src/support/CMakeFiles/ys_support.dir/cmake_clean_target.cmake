file(REMOVE_RECURSE
  "libys_support.a"
)
