file(REMOVE_RECURSE
  "CMakeFiles/ys_support.dir/StringUtils.cpp.o"
  "CMakeFiles/ys_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/ys_support.dir/Table.cpp.o"
  "CMakeFiles/ys_support.dir/Table.cpp.o.d"
  "CMakeFiles/ys_support.dir/ThreadPool.cpp.o"
  "CMakeFiles/ys_support.dir/ThreadPool.cpp.o.d"
  "libys_support.a"
  "libys_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
