# Empty dependencies file for ys_support.
# This may be replaced when dependencies are built.
