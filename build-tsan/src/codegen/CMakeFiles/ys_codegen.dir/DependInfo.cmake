
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/DomainDecomposition.cpp" "src/codegen/CMakeFiles/ys_codegen.dir/DomainDecomposition.cpp.o" "gcc" "src/codegen/CMakeFiles/ys_codegen.dir/DomainDecomposition.cpp.o.d"
  "/root/repo/src/codegen/KernelConfig.cpp" "src/codegen/CMakeFiles/ys_codegen.dir/KernelConfig.cpp.o" "gcc" "src/codegen/CMakeFiles/ys_codegen.dir/KernelConfig.cpp.o.d"
  "/root/repo/src/codegen/KernelExecutor.cpp" "src/codegen/CMakeFiles/ys_codegen.dir/KernelExecutor.cpp.o" "gcc" "src/codegen/CMakeFiles/ys_codegen.dir/KernelExecutor.cpp.o.d"
  "/root/repo/src/codegen/SourceEmitter.cpp" "src/codegen/CMakeFiles/ys_codegen.dir/SourceEmitter.cpp.o" "gcc" "src/codegen/CMakeFiles/ys_codegen.dir/SourceEmitter.cpp.o.d"
  "/root/repo/src/codegen/VectorFold.cpp" "src/codegen/CMakeFiles/ys_codegen.dir/VectorFold.cpp.o" "gcc" "src/codegen/CMakeFiles/ys_codegen.dir/VectorFold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/stencil/CMakeFiles/ys_stencil.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/arch/CMakeFiles/ys_arch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/ys_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
