# Empty compiler generated dependencies file for ys_codegen.
# This may be replaced when dependencies are built.
