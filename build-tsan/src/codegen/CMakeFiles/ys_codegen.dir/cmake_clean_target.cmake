file(REMOVE_RECURSE
  "libys_codegen.a"
)
