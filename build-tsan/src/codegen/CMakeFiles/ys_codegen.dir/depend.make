# Empty dependencies file for ys_codegen.
# This may be replaced when dependencies are built.
