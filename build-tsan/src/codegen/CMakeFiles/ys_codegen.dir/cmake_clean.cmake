file(REMOVE_RECURSE
  "CMakeFiles/ys_codegen.dir/DomainDecomposition.cpp.o"
  "CMakeFiles/ys_codegen.dir/DomainDecomposition.cpp.o.d"
  "CMakeFiles/ys_codegen.dir/KernelConfig.cpp.o"
  "CMakeFiles/ys_codegen.dir/KernelConfig.cpp.o.d"
  "CMakeFiles/ys_codegen.dir/KernelExecutor.cpp.o"
  "CMakeFiles/ys_codegen.dir/KernelExecutor.cpp.o.d"
  "CMakeFiles/ys_codegen.dir/SourceEmitter.cpp.o"
  "CMakeFiles/ys_codegen.dir/SourceEmitter.cpp.o.d"
  "CMakeFiles/ys_codegen.dir/VectorFold.cpp.o"
  "CMakeFiles/ys_codegen.dir/VectorFold.cpp.o.d"
  "libys_codegen.a"
  "libys_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
