file(REMOVE_RECURSE
  "libys_ecm.a"
)
