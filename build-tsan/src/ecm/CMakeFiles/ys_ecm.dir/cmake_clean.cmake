file(REMOVE_RECURSE
  "CMakeFiles/ys_ecm.dir/BlockingSelector.cpp.o"
  "CMakeFiles/ys_ecm.dir/BlockingSelector.cpp.o.d"
  "CMakeFiles/ys_ecm.dir/ECMModel.cpp.o"
  "CMakeFiles/ys_ecm.dir/ECMModel.cpp.o.d"
  "CMakeFiles/ys_ecm.dir/InCoreModel.cpp.o"
  "CMakeFiles/ys_ecm.dir/InCoreModel.cpp.o.d"
  "CMakeFiles/ys_ecm.dir/LayerCondition.cpp.o"
  "CMakeFiles/ys_ecm.dir/LayerCondition.cpp.o.d"
  "CMakeFiles/ys_ecm.dir/Roofline.cpp.o"
  "CMakeFiles/ys_ecm.dir/Roofline.cpp.o.d"
  "libys_ecm.a"
  "libys_ecm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_ecm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
