# Empty dependencies file for ys_ecm.
# This may be replaced when dependencies are built.
