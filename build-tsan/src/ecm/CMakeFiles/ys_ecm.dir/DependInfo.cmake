
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecm/BlockingSelector.cpp" "src/ecm/CMakeFiles/ys_ecm.dir/BlockingSelector.cpp.o" "gcc" "src/ecm/CMakeFiles/ys_ecm.dir/BlockingSelector.cpp.o.d"
  "/root/repo/src/ecm/ECMModel.cpp" "src/ecm/CMakeFiles/ys_ecm.dir/ECMModel.cpp.o" "gcc" "src/ecm/CMakeFiles/ys_ecm.dir/ECMModel.cpp.o.d"
  "/root/repo/src/ecm/InCoreModel.cpp" "src/ecm/CMakeFiles/ys_ecm.dir/InCoreModel.cpp.o" "gcc" "src/ecm/CMakeFiles/ys_ecm.dir/InCoreModel.cpp.o.d"
  "/root/repo/src/ecm/LayerCondition.cpp" "src/ecm/CMakeFiles/ys_ecm.dir/LayerCondition.cpp.o" "gcc" "src/ecm/CMakeFiles/ys_ecm.dir/LayerCondition.cpp.o.d"
  "/root/repo/src/ecm/Roofline.cpp" "src/ecm/CMakeFiles/ys_ecm.dir/Roofline.cpp.o" "gcc" "src/ecm/CMakeFiles/ys_ecm.dir/Roofline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/arch/CMakeFiles/ys_arch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/codegen/CMakeFiles/ys_codegen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stencil/CMakeFiles/ys_stencil.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/ys_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
