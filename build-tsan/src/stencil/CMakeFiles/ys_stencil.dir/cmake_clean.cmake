file(REMOVE_RECURSE
  "CMakeFiles/ys_stencil.dir/Grid.cpp.o"
  "CMakeFiles/ys_stencil.dir/Grid.cpp.o.d"
  "CMakeFiles/ys_stencil.dir/GridNorms.cpp.o"
  "CMakeFiles/ys_stencil.dir/GridNorms.cpp.o.d"
  "CMakeFiles/ys_stencil.dir/StencilBundle.cpp.o"
  "CMakeFiles/ys_stencil.dir/StencilBundle.cpp.o.d"
  "CMakeFiles/ys_stencil.dir/StencilExpr.cpp.o"
  "CMakeFiles/ys_stencil.dir/StencilExpr.cpp.o.d"
  "CMakeFiles/ys_stencil.dir/StencilSpec.cpp.o"
  "CMakeFiles/ys_stencil.dir/StencilSpec.cpp.o.d"
  "libys_stencil.a"
  "libys_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
