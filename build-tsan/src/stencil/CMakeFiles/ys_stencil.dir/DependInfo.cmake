
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stencil/Grid.cpp" "src/stencil/CMakeFiles/ys_stencil.dir/Grid.cpp.o" "gcc" "src/stencil/CMakeFiles/ys_stencil.dir/Grid.cpp.o.d"
  "/root/repo/src/stencil/GridNorms.cpp" "src/stencil/CMakeFiles/ys_stencil.dir/GridNorms.cpp.o" "gcc" "src/stencil/CMakeFiles/ys_stencil.dir/GridNorms.cpp.o.d"
  "/root/repo/src/stencil/StencilBundle.cpp" "src/stencil/CMakeFiles/ys_stencil.dir/StencilBundle.cpp.o" "gcc" "src/stencil/CMakeFiles/ys_stencil.dir/StencilBundle.cpp.o.d"
  "/root/repo/src/stencil/StencilExpr.cpp" "src/stencil/CMakeFiles/ys_stencil.dir/StencilExpr.cpp.o" "gcc" "src/stencil/CMakeFiles/ys_stencil.dir/StencilExpr.cpp.o.d"
  "/root/repo/src/stencil/StencilSpec.cpp" "src/stencil/CMakeFiles/ys_stencil.dir/StencilSpec.cpp.o" "gcc" "src/stencil/CMakeFiles/ys_stencil.dir/StencilSpec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/ys_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
