file(REMOVE_RECURSE
  "libys_stencil.a"
)
