# Empty dependencies file for ys_stencil.
# This may be replaced when dependencies are built.
