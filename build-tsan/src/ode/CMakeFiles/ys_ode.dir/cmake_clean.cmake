file(REMOVE_RECURSE
  "CMakeFiles/ys_ode.dir/Adaptive.cpp.o"
  "CMakeFiles/ys_ode.dir/Adaptive.cpp.o.d"
  "CMakeFiles/ys_ode.dir/ButcherTableau.cpp.o"
  "CMakeFiles/ys_ode.dir/ButcherTableau.cpp.o.d"
  "CMakeFiles/ys_ode.dir/ExplicitRK.cpp.o"
  "CMakeFiles/ys_ode.dir/ExplicitRK.cpp.o.d"
  "CMakeFiles/ys_ode.dir/IVP.cpp.o"
  "CMakeFiles/ys_ode.dir/IVP.cpp.o.d"
  "CMakeFiles/ys_ode.dir/PIRK.cpp.o"
  "CMakeFiles/ys_ode.dir/PIRK.cpp.o.d"
  "CMakeFiles/ys_ode.dir/Registry.cpp.o"
  "CMakeFiles/ys_ode.dir/Registry.cpp.o.d"
  "CMakeFiles/ys_ode.dir/Stability.cpp.o"
  "CMakeFiles/ys_ode.dir/Stability.cpp.o.d"
  "libys_ode.a"
  "libys_ode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
