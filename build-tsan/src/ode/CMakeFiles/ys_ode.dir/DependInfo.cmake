
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ode/Adaptive.cpp" "src/ode/CMakeFiles/ys_ode.dir/Adaptive.cpp.o" "gcc" "src/ode/CMakeFiles/ys_ode.dir/Adaptive.cpp.o.d"
  "/root/repo/src/ode/ButcherTableau.cpp" "src/ode/CMakeFiles/ys_ode.dir/ButcherTableau.cpp.o" "gcc" "src/ode/CMakeFiles/ys_ode.dir/ButcherTableau.cpp.o.d"
  "/root/repo/src/ode/ExplicitRK.cpp" "src/ode/CMakeFiles/ys_ode.dir/ExplicitRK.cpp.o" "gcc" "src/ode/CMakeFiles/ys_ode.dir/ExplicitRK.cpp.o.d"
  "/root/repo/src/ode/IVP.cpp" "src/ode/CMakeFiles/ys_ode.dir/IVP.cpp.o" "gcc" "src/ode/CMakeFiles/ys_ode.dir/IVP.cpp.o.d"
  "/root/repo/src/ode/PIRK.cpp" "src/ode/CMakeFiles/ys_ode.dir/PIRK.cpp.o" "gcc" "src/ode/CMakeFiles/ys_ode.dir/PIRK.cpp.o.d"
  "/root/repo/src/ode/Registry.cpp" "src/ode/CMakeFiles/ys_ode.dir/Registry.cpp.o" "gcc" "src/ode/CMakeFiles/ys_ode.dir/Registry.cpp.o.d"
  "/root/repo/src/ode/Stability.cpp" "src/ode/CMakeFiles/ys_ode.dir/Stability.cpp.o" "gcc" "src/ode/CMakeFiles/ys_ode.dir/Stability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/codegen/CMakeFiles/ys_codegen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stencil/CMakeFiles/ys_stencil.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/ys_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/arch/CMakeFiles/ys_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
