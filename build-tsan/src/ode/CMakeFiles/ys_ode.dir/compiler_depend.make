# Empty compiler generated dependencies file for ys_ode.
# This may be replaced when dependencies are built.
