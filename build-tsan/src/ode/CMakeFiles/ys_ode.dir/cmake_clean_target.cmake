file(REMOVE_RECURSE
  "libys_ode.a"
)
