file(REMOVE_RECURSE
  "CMakeFiles/ys_offsite.dir/Database.cpp.o"
  "CMakeFiles/ys_offsite.dir/Database.cpp.o.d"
  "CMakeFiles/ys_offsite.dir/Offsite.cpp.o"
  "CMakeFiles/ys_offsite.dir/Offsite.cpp.o.d"
  "CMakeFiles/ys_offsite.dir/Report.cpp.o"
  "CMakeFiles/ys_offsite.dir/Report.cpp.o.d"
  "libys_offsite.a"
  "libys_offsite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_offsite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
