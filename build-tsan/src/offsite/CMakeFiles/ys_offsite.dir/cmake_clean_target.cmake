file(REMOVE_RECURSE
  "libys_offsite.a"
)
