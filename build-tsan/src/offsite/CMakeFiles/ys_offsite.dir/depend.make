# Empty dependencies file for ys_offsite.
# This may be replaced when dependencies are built.
