file(REMOVE_RECURSE
  "CMakeFiles/ys_cachesim.dir/CacheSim.cpp.o"
  "CMakeFiles/ys_cachesim.dir/CacheSim.cpp.o.d"
  "CMakeFiles/ys_cachesim.dir/MultiCoreSim.cpp.o"
  "CMakeFiles/ys_cachesim.dir/MultiCoreSim.cpp.o.d"
  "CMakeFiles/ys_cachesim.dir/StencilTrace.cpp.o"
  "CMakeFiles/ys_cachesim.dir/StencilTrace.cpp.o.d"
  "libys_cachesim.a"
  "libys_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
