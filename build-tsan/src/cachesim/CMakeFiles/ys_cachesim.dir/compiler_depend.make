# Empty compiler generated dependencies file for ys_cachesim.
# This may be replaced when dependencies are built.
