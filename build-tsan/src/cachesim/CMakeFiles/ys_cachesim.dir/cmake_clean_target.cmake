file(REMOVE_RECURSE
  "libys_cachesim.a"
)
