file(REMOVE_RECURSE
  "libys_tuner.a"
)
