file(REMOVE_RECURSE
  "CMakeFiles/ys_tuner.dir/MeasureHarness.cpp.o"
  "CMakeFiles/ys_tuner.dir/MeasureHarness.cpp.o.d"
  "CMakeFiles/ys_tuner.dir/OnlineTuner.cpp.o"
  "CMakeFiles/ys_tuner.dir/OnlineTuner.cpp.o.d"
  "CMakeFiles/ys_tuner.dir/TuningStrategy.cpp.o"
  "CMakeFiles/ys_tuner.dir/TuningStrategy.cpp.o.d"
  "libys_tuner.a"
  "libys_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
