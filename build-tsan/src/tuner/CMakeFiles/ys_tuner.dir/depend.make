# Empty dependencies file for ys_tuner.
# This may be replaced when dependencies are built.
