file(REMOVE_RECURSE
  "CMakeFiles/ys_driver.dir/Driver.cpp.o"
  "CMakeFiles/ys_driver.dir/Driver.cpp.o.d"
  "libys_driver.a"
  "libys_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
