file(REMOVE_RECURSE
  "libys_driver.a"
)
