# Empty dependencies file for ys_driver.
# This may be replaced when dependencies are built.
