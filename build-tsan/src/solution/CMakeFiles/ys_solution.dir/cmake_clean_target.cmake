file(REMOVE_RECURSE
  "libys_solution.a"
)
