# Empty compiler generated dependencies file for ys_solution.
# This may be replaced when dependencies are built.
