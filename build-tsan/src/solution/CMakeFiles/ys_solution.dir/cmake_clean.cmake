file(REMOVE_RECURSE
  "CMakeFiles/ys_solution.dir/StencilSolution.cpp.o"
  "CMakeFiles/ys_solution.dir/StencilSolution.cpp.o.d"
  "libys_solution.a"
  "libys_solution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_solution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
