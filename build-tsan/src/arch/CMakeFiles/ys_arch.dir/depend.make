# Empty dependencies file for ys_arch.
# This may be replaced when dependencies are built.
