file(REMOVE_RECURSE
  "CMakeFiles/ys_arch.dir/MachineModel.cpp.o"
  "CMakeFiles/ys_arch.dir/MachineModel.cpp.o.d"
  "libys_arch.a"
  "libys_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
