file(REMOVE_RECURSE
  "libys_arch.a"
)
