# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("arch")
subdirs("stencil")
subdirs("codegen")
subdirs("frontend")
subdirs("solution")
subdirs("driver")
subdirs("cachesim")
subdirs("ecm")
subdirs("tuner")
subdirs("ode")
subdirs("offsite")
